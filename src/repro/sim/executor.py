"""The measured workload executor.

Drives a store with a YCSB stream while separating *operation-phase* work
from *verification-phase* work in the global counters, then hands both to
the cost model. Workers are logical — operations round-robin across worker
ids exactly as the paper's identical worker loops do — and the cost
model's parallel-speedup term converts the summed serial work into wall
time (see ``repro.sim.costs``).

The executor works with any store exposing the common API
(``get``/``put``/``scan``/``verify``/``flush`` — FastVer and all
baselines), so every figure's systems run under identical measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.enclave.costmodel import SIMULATED, EnclaveCostProfile
from repro.instrument import COUNTERS
from repro.sim.costs import DEFAULT_COSTS, CostModel
from repro.sim.metrics import MetricsBuilder, RunMetrics
from repro.workloads.ycsb import OP_GET, OP_INSERT, OP_PUT, OP_SCAN, YcsbGenerator


@dataclass
class RunResult:
    """Everything a bench needs to print one table row."""

    metrics: RunMetrics
    deferred_population: int

    @property
    def throughput_mops(self) -> float:
        return self.metrics.throughput_mops

    @property
    def verification_latency_s(self) -> float:
        return self.metrics.verification_latency_s


class SimulatedExecutor:
    """Runs a workload against a store under cost-model measurement."""

    def __init__(self, db, client, n_workers: int, modeled_db_records: int,
                 profile: EnclaveCostProfile = SIMULATED,
                 costs: CostModel = DEFAULT_COSTS):
        self.db = db
        self.client = client
        self.n_workers = n_workers
        self.modeled_db_records = modeled_db_records
        self.profile = profile
        self.costs = costs

    def run(self, generator: YcsbGenerator, count: int,
            verify_every: int | None = None,
            final_verify: bool = True) -> RunResult:
        """Execute ``count`` stream entries, verifying every
        ``verify_every`` key operations. ``final_verify=False`` skips the
        trailing verification (ops-phase-only measurement, used by bars
        that amortize verification across much larger batches)."""
        builder = MetricsBuilder(self.n_workers, self.modeled_db_records,
                                 self.profile, self.costs)
        ops_since_verify = 0
        before = COUNTERS.snapshot()
        key_ops_in_phase = 0
        for i, (kind, key, arg) in enumerate(generator.operations(count)):
            worker = i % self.n_workers
            if kind == OP_GET:
                self.db.get(self.client, key, worker=worker)
                done = 1
            elif kind in (OP_PUT, OP_INSERT):
                self.db.put(self.client, key, arg, worker=worker)
                done = 1
            else:
                done = max(1, len(self.db.scan(self.client, key, arg,
                                               worker=worker)))
            ops_since_verify += done
            key_ops_in_phase += done
            if verify_every is not None and ops_since_verify >= verify_every:
                before, key_ops_in_phase = self._verify_phase(
                    builder, before, key_ops_in_phase)
                ops_since_verify = 0
        if final_verify and hasattr(self.db, "verify") and ops_since_verify > 0:
            before, key_ops_in_phase = self._verify_phase(
                builder, before, key_ops_in_phase)
        else:
            self._flush_phase(builder, before, key_ops_in_phase)
        metrics = builder.build()
        population = (self.db.deferred_population()
                      if hasattr(self.db, "deferred_population") else 0)
        return RunResult(metrics, population)

    def _verify_phase(self, builder: MetricsBuilder, before, key_ops: int):
        """Close an op phase, run verification, attribute its counters."""
        if hasattr(self.db, "flush"):
            self.db.flush()
        ops_delta = COUNTERS.snapshot().diff(before)
        builder.add_ops(ops_delta, key_ops)
        v_before = COUNTERS.snapshot()
        self.db.verify()
        if hasattr(self.db, "flush"):
            self.db.flush()
        builder.add_verification(COUNTERS.snapshot().diff(v_before))
        return COUNTERS.snapshot(), 0

    def _flush_phase(self, builder: MetricsBuilder, before, key_ops: int):
        if hasattr(self.db, "flush"):
            self.db.flush()
        builder.add_ops(COUNTERS.snapshot().diff(before), key_ops)

"""The calibrated cost model: work counters → simulated time.

The reproduction's performance methodology (see DESIGN.md): the *real*
verification algorithms run on down-scaled workloads and count every unit
of work — hashes (with byte volumes), multiset updates, MACs, enclave
crossings, store touches, CAS attempts, log entries. This module converts
those counts into nanoseconds using rates calibrated against the paper's
own measurements:

* Blake3 Merkle hashing at ~400 MB/s and AES-CMAC multiset hashing at
  ~3.2 GB/s (§8.5's profiled rates) — the 8x asymmetry that makes deferred
  verification an order of magnitude cheaper per operation;
* plain Merkle at ~100K ops/s single-threaded, DV at ~10M ops/s (Fig 14b);
* memory access costs that depend on whether the *modelled* database fits
  in L3 (Fig 14c's 16K-records vs 64M-records gap);
* ~75% scaling efficiency per doubling of workers (Fig 14c), applied as a
  sub-linear parallel speedup exponent.

Only these unit costs are modelled; everything about *how many* of each
unit a scheme performs comes from executing the actual implementation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.enclave.costmodel import EnclaveCostProfile
from repro.instrument import Counters


@dataclass(frozen=True)
class CostModel:
    """Unit costs in nanoseconds (and per-byte rates)."""

    # Crypto (verifier side). 400 MB/s => 2.5 ns/B; 3.2 GB/s => 0.3125 ns/B.
    merkle_hash_fixed_ns: float = 120.0
    merkle_hash_per_byte_ns: float = 2.5
    multiset_fixed_ns: float = 15.0
    multiset_per_byte_ns: float = 0.3125
    mac_ns: float = 30.0

    # Host-side bookkeeping.
    log_entry_ns: float = 15.0
    cas_ns: float = 18.0
    cas_retry_penalty_ns: float = 60.0
    # Host mirror hash updates are charged at zero by default: in the real
    # system the host reads the freshly computed hash out of the verifier's
    # log response instead of recomputing it (same OS thread, §7); our
    # driver recomputes only because its log responses are consumed lazily.
    # The counters still record the events for diagnostics.
    host_hash_fixed_ns: float = 0.0
    host_hash_per_byte_ns: float = 0.0

    # Memory hierarchy: store touches on an L3-resident vs DRAM-resident
    # database (Fig 14c). The crossover is the modelled record count that
    # stops fitting in a ~40 MB L3.
    mem_access_l3_ns: float = 22.0
    mem_access_dram_ns: float = 75.0
    l3_capacity_records: int = 1 << 20

    # Parallel scaling: throughput grows ~1.75x per worker doubling
    # (Fig 14c) => speedup(n) = n ** log2(1.75).
    scaling_exponent: float = math.log2(1.75)

    # ------------------------------------------------------------------
    def mem_access_ns(self, modeled_db_records: int) -> float:
        """Per-touch store cost given the *modelled* database size."""
        if modeled_db_records <= self.l3_capacity_records:
            return self.mem_access_l3_ns
        return self.mem_access_dram_ns

    def verifier_ns(self, c: Counters, profile: EnclaveCostProfile) -> float:
        """Time spent inside the enclave (verifier compute + crossings)."""
        compute = (
            c.merkle_hashes * self.merkle_hash_fixed_ns
            + c.merkle_hash_bytes * self.merkle_hash_per_byte_ns
            + c.multiset_updates * self.multiset_fixed_ns
            + c.multiset_hash_bytes * self.multiset_per_byte_ns
            + c.mac_ops * self.mac_ns
        )
        return (compute * profile.compute_multiplier
                + c.enclave_entries * profile.crossing_ns)

    def host_ns(self, c: Counters, modeled_db_records: int) -> float:
        """Time spent on the untrusted side."""
        mem = self.mem_access_ns(modeled_db_records)
        return (
            (c.store_reads + c.store_writes) * mem
            + c.cas_attempts * self.cas_ns
            + c.cas_failures * self.cas_retry_penalty_ns
            + c.log_entries * self.log_entry_ns
            + c.host_merkle_hashes * self.host_hash_fixed_ns
            + c.host_merkle_hash_bytes * self.host_hash_per_byte_ns
        )

    def total_ns(self, c: Counters, profile: EnclaveCostProfile,
                 modeled_db_records: int) -> float:
        return self.verifier_ns(c, profile) + self.host_ns(c, modeled_db_records)

    def amortized_crossing_ns(self, ops: int, enclave_entries: int,
                              profile: EnclaveCostProfile) -> float:
        """Per-operation crossing overhead after batching: the group-commit
        lever (§7) moves this from one full ``crossing_ns`` per op toward
        ``crossing_ns / batch_fill`` as batches widen."""
        if ops <= 0:
            return 0.0
        return enclave_entries * profile.crossing_ns / ops

    def parallel_ns(self, serial_ns: float, n_workers: int) -> float:
        """Wall time for work that parallelizes across n workers with the
        paper's observed (imperfect) scaling."""
        if n_workers <= 1:
            return serial_ns
        return serial_ns / (n_workers ** self.scaling_exponent)

    def pipelined_total_ns(self, c: Counters, profile: EnclaveCostProfile,
                           modeled_db_records: int, n_shards: int,
                           overlap: float = 0.9) -> float:
        """Wall time for the *pipelined* group commit.

        The synchronous pump serializes verifier and host work:
        ``total_ns = verifier_ns + host_ns``. Pipelined settlement breaks
        that in two ways. First, per-shard flushes are *independent*
        ecalls — each carries only its shard's entries and the verifier
        threads share no state across shards — so the enclave side runs
        shard-parallel at the paper's observed scaling (Fig 14c's ~1.75x
        per doubling, the same exponent :meth:`parallel_ns` applies).
        Second, because the pump no longer blocks on receipts, the host's
        staging/bookkeeping for pump N+1 proceeds while the verifier
        digests pump N's batches: the two sides overlap, and wall time
        approaches ``max(verifier, host)`` instead of their sum.

        ``overlap`` (default 0.9) is the fraction of the shorter side
        actually hidden behind the longer one — the residue models the
        dispatch/settle bubbles at pipeline fill and drain, which the
        benchmarks observe as the first dispatch pump and final drain
        pumps doing unoverlapped work.
        """
        v = self.parallel_ns(self.verifier_ns(c, profile),
                             max(1, n_shards))
        h = self.host_ns(c, modeled_db_records)
        return max(v, h) + (1.0 - overlap) * min(v, h)

    def verifier_fraction(self, c: Counters, profile: EnclaveCostProfile,
                          modeled_db_records: int) -> float:
        """Fraction of total time inside the verifier (Fig 14b's 2nd axis)."""
        v = self.verifier_ns(c, profile)
        t = v + self.host_ns(c, modeled_db_records)
        return v / t if t > 0 else 0.0


#: The default calibrated model.
DEFAULT_COSTS = CostModel()

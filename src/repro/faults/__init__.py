"""Deterministic fault injection across every untrusted I/O boundary.

FastVer's integrity guarantee is unconditional, but its *availability*
story (§2.2, §7) assumes the system survives benign failures: enclave
reboots with sealed state, CPR checkpoint recovery, torn writes on the log
device. This package makes those failures injectable, seeded, and
bit-for-bit reproducible, plus provides the chaos soak harness that
asserts the tri-state invariant (verified / caught-tampering /
recoverable-unavailable) under every schedule.
"""

from repro.faults.plan import (
    KNOWN_POINTS,
    FaultPlan,
    FaultSpec,
    install_faults,
)

__all__ = [
    "KNOWN_POINTS",
    "FaultPlan",
    "FaultSpec",
    "install_faults",
]

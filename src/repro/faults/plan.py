"""The fault-point registry and the seeded, reproducible fault plan.

A :class:`FaultPlan` is consulted at every *fault point* — a named
injection site compiled into the untrusted layers (log device, checkpoint
path, enclave call gate, receipt channel). Each consultation is an
*encounter*; the plan decides deterministically whether the fault fires,
from either an explicit schedule of encounter indices or a per-point
seeded coin. Decisions are independent per point (each point gets its own
RNG derived from ``(seed, point)``), so the same seed produces the same
injection trace whenever the program's control flow is the same — which is
what makes chaos runs replayable and shrinkable.

The plan also records its firing trace, so two runs can be compared
bit-for-bit (the reproducibility acceptance criterion) and a failing
schedule can be replayed as an explicit ``at_counts`` list.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

#: Every injection site compiled into the codebase. Specs naming anything
#: else are rejected eagerly — a typo'd point would otherwise never fire.
KNOWN_POINTS = frozenset({
    # LogDevice (store/hybridlog.py)
    "device.read.transient",    # read raises TransientIOError once
    "device.read.bitrot",       # latent sector corruption: one byte of the
                                # stored page flips *persistently* — every
                                # later read sees the rot (no error raised;
                                # detection is the scrubber's/verifier's job)
    "device.write.torn",        # write persists only a prefix of the page
    "device.flush.partial",     # flush aborts partway (prefix persisted)
    # Checkpoint blob path (store/checkpoint.py)
    "checkpoint.blob.truncate", # index blob loses its tail
    "checkpoint.blob.corrupt",  # one byte of the index blob flips
    "checkpoint.blob.bitrot",   # one byte of the *retained* blob flips after
                                # the checkpoint was taken (rot at rest): the
                                # token looks healthy until recover or scrub
                                # touches it
    # Enclave call gate (enclave/enclave.py)
    "ecall.transient",          # call gate fails before dispatch (EAGAIN)
    "ecall.reboot",             # surprise reboot: volatile state lost
    # Group-commit batching (core/fastver.py, enclave/enclave.py)
    "batch.partial",            # one staged put's client MAC corrupted, so
                                # the enclave rejects exactly that entry and
                                # the partial-batch isolation path runs
    "batch.reboot_mid_batch",   # enclave reboots while an apply_batch is
                                # executing; the host reinstates the batch
    # Client receipt channel (core/protocol.py)
    "receipt.drop",             # receipt lost in transit
    "receipt.duplicate",        # receipt delivered twice
    "receipt.reorder",          # receipt withheld, delivered late/out of order
    # Serving layer (server/pipeline.py, server/supervisor.py)
    "server.queue.shed",        # admission control sheds the request
    "server.wire.request",      # request lost before reaching the pipeline
    "server.wire.response",     # response lost after the op was applied
    "server.breaker.trip",      # circuit breaker forced open (downstream flap)
    "server.supervisor.stall",  # one supervisor recovery attempt fails
    # Replication channel (replication/manager.py)
    "repl.ship.drop",           # shipment lost in transit (retransmitted)
    "repl.ship.reorder",        # a later shipment delivered first
    "repl.ship.corrupt",        # one byte of the shipment body flips
    "repl.standby.lag",         # standby apply stalls this pump (lag spike)
    "repl.primary.kill",        # primary enclave destroyed mid-epoch
    "repl.standby.kill",        # one group member killed; same encounter
                                # index as repl.primary.kill = correlated
    "repl.lease.partition",     # one standby's lease grant never arrives
    # The standby's own enclave (replication/standby.py)
    "standby.reboot",           # replica enclave reboots; replica is rebuilt
    "standby.stall_mid_apply",  # replica dies partway through an apply
    # Background scrub & verified repair (scrub/scrubber.py)
    "scrub.repair.fail",        # one repair attempt dies before patching;
                                # the page stays quarantined and is retried
})


@dataclass(frozen=True)
class FaultSpec:
    """How one fault point behaves under a plan.

    ``probability`` draws a seeded coin per encounter; ``at_counts`` fires
    at exact encounter indices (0-based) regardless of the coin;
    ``max_fires`` caps total firings (so a "transient" fault can be made
    to heal after N occurrences).
    """

    probability: float = 0.0
    at_counts: tuple[int, ...] = ()
    max_fires: int | None = None

    def __post_init__(self):
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.max_fires is not None and self.max_fires < 0:
            raise ValueError("max_fires cannot be negative")


def _coerce_spec(value) -> FaultSpec:
    if isinstance(value, FaultSpec):
        return value
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return FaultSpec(probability=float(value))
    if isinstance(value, (list, tuple, set, frozenset)):
        return FaultSpec(at_counts=tuple(sorted(int(c) for c in value)))
    raise TypeError(f"cannot interpret fault spec {value!r}")


class FaultPlan:
    """A seeded, fully reproducible injection schedule over fault points.

    ``specs`` maps point names to a :class:`FaultSpec`, a bare probability
    (float), or an explicit encounter-index schedule (list of ints)::

        FaultPlan(seed=7, specs={
            "device.read.transient": 0.01,     # 1% of reads
            "ecall.reboot": [42],              # exactly the 43rd ecall
        })

    The same seed and the same program control flow yield the same
    decisions and the same :attr:`trace`, twice in a row.
    """

    def __init__(self, seed: int = 0,
                 specs: dict[str, FaultSpec | float | list | tuple] | None = None):
        self.seed = seed
        self._specs: dict[str, FaultSpec] = {}
        for point, value in (specs or {}).items():
            if point not in KNOWN_POINTS:
                raise ValueError(
                    f"unknown fault point {point!r}; known: {sorted(KNOWN_POINTS)}")
            self._specs[point] = _coerce_spec(value)
        self._rngs = {point: random.Random(f"{seed}:{point}")
                      for point in self._specs}
        self._schedules = {point: frozenset(spec.at_counts)
                           for point, spec in self._specs.items()}
        self._encounters: dict[str, int] = {}
        self._fires: dict[str, int] = {}
        #: Firing log: (point, encounter index) per injected fault, in order.
        self.trace: list[tuple[str, int]] = []

    # ------------------------------------------------------------------
    # The one hot call: consulted at every instrumented boundary
    # ------------------------------------------------------------------
    def fire(self, point: str) -> bool:
        """Record an encounter of ``point``; decide whether the fault fires."""
        if point not in KNOWN_POINTS:
            raise ValueError(f"unknown fault point {point!r}")
        n = self._encounters.get(point, 0)
        self._encounters[point] = n + 1
        spec = self._specs.get(point)
        if spec is None:
            return False
        if spec.max_fires is not None and self._fires.get(point, 0) >= spec.max_fires:
            return False
        hit = n in self._schedules[point]
        if not hit and spec.probability > 0.0:
            hit = self._rngs[point].random() < spec.probability
        if hit:
            self._fires[point] = self._fires.get(point, 0) + 1
            self.trace.append((point, n))
        return hit

    # ------------------------------------------------------------------
    # Introspection (chaos reports, reproducibility checks)
    # ------------------------------------------------------------------
    def points(self) -> list[str]:
        """The point names this plan can fire, sorted (reporting aid)."""
        return sorted(self._specs)

    def encounters(self, point: str) -> int:
        return self._encounters.get(point, 0)

    def fires(self, point: str) -> int:
        return self._fires.get(point, 0)

    def total_fires(self) -> int:
        return len(self.trace)

    def trace_digest(self) -> str:
        """A stable hash of the full injection trace (reproducibility)."""
        h = hashlib.sha256()
        for point, n in self.trace:
            h.update(f"{point}@{n};".encode())
        return h.hexdigest()

    def __repr__(self) -> str:
        return (f"FaultPlan(seed={self.seed}, points={sorted(self._specs)}, "
                f"fires={len(self.trace)})")


def install_faults(db, plan: FaultPlan | None) -> FaultPlan | None:
    """Thread one plan through every untrusted boundary of a FastVer.

    Pass ``None`` to uninstall. Re-run after ``recover()`` replaces the
    store with one sharing the old log device (nothing to redo there), and
    after a full re-provision (new ``FastVer``), which starts fault-free.
    If a :class:`~repro.server.FastVerServer` fronts this database it is
    found through its back-reference and armed with the same plan, so the
    queue/wire/breaker/supervisor boundaries fire from the same trace.
    """
    db.faults = plan
    db.store.log.device.faults = plan
    db.enclave.faults = plan
    db.receipt_channel.faults = plan
    server = getattr(db, "_server", None)
    if server is not None:
        server.faults = plan
    return plan

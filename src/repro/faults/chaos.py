"""The chaos soak harness: YCSB under a fault schedule, with an oracle.

Runs a seeded YCSB-A stream against a small FastVer while a
:class:`~repro.faults.FaultPlan` injects failures at every untrusted
boundary, and checks the **tri-state invariant** on every operation:

1. the operation succeeds and its answer matches the oracle's expected
   value (a shadow model of what an honest store would hold), or
2. it raises an :class:`~repro.errors.IntegrityError` — allowed only when
   the harness actually tampered, or
3. it raises a typed :class:`~repro.errors.AvailabilityError`, after which
   a recovery sequence (checkpoint recovery, falling back to lenient
   log-scan salvage) restores service.

Anything else — above all a *silent wrong answer* — is a hard failure.

The whole run is deterministic: the same ``seed`` produces the same
workload, the same injection trace, and the same report digest, twice in a
row (the reproducibility acceptance criterion; ``--check-deterministic``
in the CLI runs it both ways and compares).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.adversary.host import tamper_value
from repro.core.fastver import FastVer, FastVerConfig
from repro.core.protocol import Client
from repro.crypto.mac import MacKey
from repro.errors import (
    AvailabilityError,
    IntegrityError,
    RecoveryError,
    RepairForgeryError,
    UnrecoverableError,
)
from repro.faults.plan import FaultPlan, FaultSpec, install_faults
from repro.instrument import COUNTERS
from repro.obs import LATENCIES, TRACER
from repro.obs import reset as obs_reset
from repro.obs.sink import TraceSpool, replay_fidelity
from repro.store.recovery import rebuild_index_from_log
from repro.workloads.ycsb import OP_GET, OP_PUT, WORKLOADS, YcsbGenerator

#: Default benign fault mix: every point exercised, rates low enough that
#: a 2000-op smoke finishes in seconds but still trips several recoveries.
DEFAULT_SPECS = {
    "device.read.transient": 0.002,
    "device.write.torn": 0.01,
    "device.flush.partial": 0.01,
    "checkpoint.blob.truncate": 0.05,
    "checkpoint.blob.corrupt": 0.05,
    "ecall.transient": 0.01,
    "ecall.reboot": 0.002,
    "receipt.drop": 0.01,
    "receipt.duplicate": 0.02,
    "receipt.reorder": 0.02,
}

#: ``--server`` mode adds the serving-layer boundaries: shed admissions,
#: lossy wire both ways, spurious breaker trips, stalled heal attempts.
SERVER_SPECS = dict(DEFAULT_SPECS, **{
    "server.queue.shed": 0.002,
    "server.wire.request": 0.01,
    "server.wire.response": 0.01,
    "server.breaker.trip": 0.002,
    "server.supervisor.stall": 0.25,
})

#: ``--failover`` mode arms the replication channel on top of the server
#: mix: lossy/corrupting/reordering shipment delivery, standby lag
#: spikes, and (added per-run with explicit encounter indices, so every
#: soak exercises it) the primary-enclave kill that forces promotion.
FAILOVER_SPECS = dict(SERVER_SPECS, **{
    "repl.ship.drop": 0.02,
    "repl.ship.reorder": 0.02,
    "repl.ship.corrupt": 0.02,
    "repl.standby.lag": 0.01,
})

#: With a replication group (``--standbys`` > 1) the soak also arms a
#: *correlated* standby kill — pinned to the same encounter indices as
#: ``repl.primary.kill``, and both points are consulted exactly once per
#: replication pump in a fixed order, so they land in the same tick: the
#: promotion that follows must survive losing the primary AND a group
#: member at once (the quorum rule's whole job) — plus a low-rate lease
#: partition that makes single grant messages vanish.
QUORUM_EXTRA_SPECS = {
    "repl.lease.partition": 0.01,
}

#: ``--scrub`` mode arms *latent* corruption on top of whichever mix the
#: topology selected: silent bit rot on device reads (persisted — every
#: later read sees it), rot-at-rest in the retained checkpoint blob, and
#: injected failures of individual repair attempts. Bounded by
#: ``max_fires`` so the post-soak convergence check (zero quarantined
#: pages once the faults are disarmed) is a fair oracle: rot stops
#: accumulating, repair must win.
SCRUB_EXTRA_SPECS = {
    "device.read.bitrot": FaultSpec(probability=0.0005, max_fires=5),
    "checkpoint.blob.bitrot": FaultSpec(probability=0.002, max_fires=2),
    "scrub.repair.fail": FaultSpec(probability=0.25, max_fires=2),
}


@dataclass
class ChaosReport:
    """Outcome of one chaos run (digestible, comparable across runs)."""

    seed: int
    ops_attempted: int = 0
    ops_ok: int = 0
    availability_errors: int = 0
    recoveries: int = 0
    salvages: int = 0
    integrity_detections: int = 0
    receipts_dropped: int = 0
    #: Heal sessions resolved by promoting the warm standby (--failover).
    failovers: int = 0
    #: Authenticated shipments the primary packaged for the standby.
    shipped_batches: int = 0
    #: Shipments the standby's enclave rejected (drop/reorder/corrupt —
    #: each one retransmitted; rejects are the *detection* count).
    repl_rejects: int = 0
    #: Replication group size the soak ran with (--standbys).
    standbys: int = 1
    #: Lagging/rejoining members caught up via tail redelivery.
    delta_resyncs: int = 0
    #: Members rebuilt from a full snapshot (tail GC'd, or enclave gone).
    snapshot_resyncs: int = 0
    #: Leadership lease lapses the primary observed.
    lease_expiries: int = 0
    #: Post-soak convergence: exactly one live leader holding (or owed)
    #: a quorum lease once the dust settles. False is a hard failure.
    leader_converged: bool = True
    #: The recovery ladder ran out of rungs (UnrecoverableError).
    unrecoverable: bool = False
    #: The soak ran with the background scrubber armed (--scrub).
    scrub: bool = False
    #: The soak ran the batched loop with pipelined settlement
    #: (--pipelined): per-shard flushes dispatch without resolving
    #: tickets; receipts stream back across the following pumps.
    pipelined: bool = False
    #: Shard batches dispatched as pipelined ecalls (--pipelined only).
    pipelined_batches: int = 0
    #: Device pages the scrubber re-verified.
    scrub_pages: int = 0
    #: Pages the scrubber caught corrupt and quarantined.
    scrub_mismatches: int = 0
    #: Quarantined pages repaired in place through the enclave.
    scrub_repairs: int = 0
    #: Post-soak convergence: with the faults disarmed, one full scrub
    #: pass found nothing and the quarantine drained to zero. False is a
    #: hard failure in --scrub mode.
    scrub_converged: bool = True
    #: Pages still quarantined when the soak ended (must be 0).
    quarantined_final: int = 0
    #: Reads answered with a rot-damaged value *provisionally* (§7:
    #: deferred records are verified in aggregate at epoch close, so the
    #: answer precedes the check). Each one must be followed by a
    #: detection or rollback before the epoch settles — a provisional
    #: serve that reaches a clean settlement is a hard failure.
    provisional_serves: int = 0
    #: Digest of the repair ledger (every quarantine/repair decision) —
    #: part of the determinism check in --scrub mode.
    repair_ledger_digest: str = ""
    #: The soak armed the full observability pipeline (--obs): SLO
    #: engine on the server, exemplar digest folded into the run digest.
    obs_armed: bool = False
    #: Objectives that started firing during the soak (--obs, server
    #: modes; 0 elsewhere).
    slo_alerts: int = 0
    #: Objectives still firing when the soak ended, sorted.
    slo_firing: list = field(default_factory=list)
    #: Digest of the retained exemplar set (--obs; folded into digest).
    exemplar_digest: str = ""
    #: Events the persistent spool retained (spools attach in every
    #: soak; the ring is just its cache).
    spool_events: int = 0
    #: Replay contract held: every span still in the ring was
    #: reconstructable from the spool. False is a hard failure.
    spool_replay_ok: bool = True
    fault_fires: dict = field(default_factory=dict)
    trace_digest: str = ""
    #: Tri-state violations. MUST stay empty; each entry is a hard failure.
    hard_failures: list = field(default_factory=list)
    #: Last-N trace events keyed by the fault seed, populated on any hard
    #: failure or UnrecoverableError (the operator's forensics handle —
    #: ``python -m repro chaos`` writes it to a JSON file). Excluded from
    #: :meth:`digest`: forensics describe a failure, they don't define it.
    forensics: dict | None = None

    @property
    def ok(self) -> bool:
        return not self.hard_failures

    def digest(self) -> str:
        """Stable hash of everything observable: workload outcome plus the
        full injection trace (bit-for-bit reproducibility check)."""
        h = hashlib.sha256()
        h.update(self.trace_digest.encode())
        for part in (self.seed, self.ops_attempted, self.ops_ok,
                     self.availability_errors, self.recoveries,
                     self.salvages, self.integrity_detections,
                     self.failovers, self.shipped_batches,
                     self.repl_rejects, self.standbys,
                     self.delta_resyncs, self.snapshot_resyncs,
                     self.lease_expiries, int(self.leader_converged),
                     int(self.unrecoverable)):
            h.update(str(part).encode() + b";")
        if self.scrub:
            for part in (self.scrub_pages, self.scrub_mismatches,
                         self.scrub_repairs, int(self.scrub_converged),
                         self.quarantined_final, self.provisional_serves):
                h.update(str(part).encode() + b";")
            h.update(self.repair_ledger_digest.encode() + b";")
        if self.pipelined:
            # Opt-in fold (mirrors scrub): legacy synchronous digests
            # stay byte-identical to their pinned values.
            h.update(f"pipelined={self.pipelined_batches};".encode())
        if self.obs_armed:
            # Opt-in fold (same pattern): exemplar selection and the SLO
            # alert sequence are deterministic per seed, so they join
            # the reproducibility contract — but only in --obs runs.
            h.update(f"slo_alerts={self.slo_alerts};".encode())
            h.update(("slo_firing=" + ",".join(self.slo_firing)
                      + ";").encode())
            h.update(f"exemplars={self.exemplar_digest};".encode())
        for point in sorted(self.fault_fires):
            h.update(f"{point}={self.fault_fires[point]};".encode())
        for failure in self.hard_failures:
            h.update(failure.encode() + b"\n")
        return h.hexdigest()


class _ChaosRun:
    """One soak: owns the database, the oracle, and the recovery logic."""

    MAX_RECOVER_ATTEMPTS = 3
    VERIFY_EVERY = 250

    #: Burst width in --batched mode: ops accumulated before one pump.
    BURST = 4

    #: Direct-mode scrub cadence: one budgeted scrub slice every N ops
    #: (the server modes pump theirs from the serving loop instead).
    SCRUB_EVERY = 4

    #: Trace events preserved in the forensics dump on a hard failure.
    FORENSICS_LAST = 200

    def __init__(self, seed: int, ops: int, records: int,
                 plan: FaultPlan | None, tamper_every: int | None,
                 server: bool = False, failover: bool = False,
                 batched: bool = False, standbys: int = 1,
                 scrub: bool = False, pipelined: bool = False,
                 obs: bool = False):
        batched = batched or pipelined  # pipelined implies group commit
        self.seed = seed
        self.n_ops = ops
        self.n_records = records
        self.n_standbys = standbys
        self.scrub_mode = scrub
        self.obs_mode = obs
        if plan is not None:
            self.plan = plan
        elif failover:
            specs = dict(FAILOVER_SPECS)
            # Kill the primary enclave at fixed points mid-run so every
            # failover soak exercises promotion (twice: the re-attached
            # standby absorbs a double failover).
            kills = (max(1, ops // 3), max(2, 2 * ops // 3))
            specs["repl.primary.kill"] = FaultSpec(at_counts=kills)
            if standbys > 1:
                # Correlated double-kill: same encounter indices, and the
                # manager draws both points once per pump in fixed order,
                # so the standby dies in the very tick the primary does —
                # promotion must ride on the surviving quorum.
                specs["repl.standby.kill"] = FaultSpec(at_counts=kills)
                specs.update(QUORUM_EXTRA_SPECS)
            if scrub:
                specs.update(SCRUB_EXTRA_SPECS)
            self.plan = FaultPlan(seed=seed, specs=specs)
        else:
            specs = dict(SERVER_SPECS if server or batched
                         else DEFAULT_SPECS)
            if scrub:
                specs.update(SCRUB_EXTRA_SPECS)
            self.plan = FaultPlan(seed=seed, specs=specs)
        self.tamper_every = tamper_every
        self.server_mode = server or failover or batched
        self.failover_mode = failover
        self.batched_mode = batched
        self.pipelined_mode = pipelined
        #: Ops accumulated for the next group-commit pump (--batched).
        self._burst: list[tuple] = []
        self.server = None   # FastVerServer in --server mode
        self.sdk = None      # RetryingClient in --server mode
        self._db = None      # the database outside --server mode
        self._seen_heals = 0
        self._scrubber = None  # standalone Scrubber in direct --scrub mode
        #: Rot-damaged answers served provisionally (§7 deferred reads):
        #: each must be refuted by a detection or rolled back by a heal
        #: before the next clean settlement, or the run hard-fails.
        self._unsettled_serves: list[str] = []
        self.report = ChaosReport(seed=seed, scrub=scrub,
                                  pipelined=pipelined, obs_armed=obs)
        self.generator = YcsbGenerator(WORKLOADS["YCSB-A"], records,
                                       distribution="zipfian", theta=0.9,
                                       seed=seed)
        # The oracle: expected current values, every value ever written per
        # key (fabrication detection for salvage), and the state as of the
        # last durable checkpoint (recovery rolls `current` back to it).
        self.current: dict[int, bytes] = {}
        self.history: dict[int, set[bytes]] = {}
        self.committed: dict[int, bytes] = {}
        self._next_client_id = 1
        self._provision(self.generator.initial_items())

    # ------------------------------------------------------------------
    # Provisioning / recovery plumbing
    # ------------------------------------------------------------------
    @property
    def db(self) -> FastVer:
        """The live database. In ``--server`` mode the server owns it (and
        swaps it out during salvage), so always read through here."""
        return self.server.db if self.server is not None else self._db

    def _provision(self, items: list[tuple[int, bytes]]) -> None:
        """Build a fresh FastVer over ``items`` and take a clean baseline
        checkpoint *before* faults are armed, so there is always a sane
        recovery point. In ``--server`` mode, front it with the serving
        pipeline and drive it through the retrying SDK."""
        db = FastVer(
            FastVerConfig(key_width=16, n_workers=2, partition_depth=3,
                          cache_capacity=64),
            items=items,
        )
        self.client = Client(self._next_client_id,
                             MacKey.generate(f"chaos-{self._next_client_id}"))
        self._next_client_id += 1
        db.register_client(self.client)
        for k, payload in items:
            self.current[k] = payload
            self.history.setdefault(k, set()).add(payload)
        db.verify()
        db.checkpoint()
        self.committed = dict(self.current)
        if self.server_mode:
            from repro.backoff import BackoffPolicy
            from repro.client import RetryingClient
            from repro.server import FastVerServer, ServerConfig

            cfg = ServerConfig()
            if self.batched_mode:
                # Small batches + a generous linger window: the soak's
                # bursts fill shards within one pump, and every ticket
                # resolves before the pump returns — or, in --pipelined
                # mode, within the bounded settle drain that follows.
                cfg = ServerConfig(group_commit=True, max_batch_ops=4,
                                   max_batch_ticks=16.0,
                                   pipeline=self.pipelined_mode)
            if self.scrub_mode:
                # Opt-in: existing (non-scrub) soak digests stay pinned.
                cfg.scrub_enabled = True
            if self.obs_mode:
                # Opt-in SLO engine (same pattern). The tight p99 budget
                # is deliberate: a chaos soak's recovery stalls push
                # verified latencies far past it, so every --obs soak
                # demonstrably fires a deterministic burn-rate alert
                # whose exemplar-backed lifecycle the acceptance test
                # reconstructs from the persisted spool alone.
                from repro.obs.slo import SloConfig
                cfg.slo = SloConfig(verified_p99_budget=64.0)
            self.server = FastVerServer(
                db, cfg,
                salvage_hook=self._server_salvage_hook, warm=items)
            if self.failover_mode:
                # Standbys first, faults after: the bootstrap snapshots
                # run clean, exactly like the baseline checkpoint above.
                from repro.replication import ReplicationConfig
                self.server.attach_standby(
                    config=ReplicationConfig(n_standbys=self.n_standbys),
                    promote_hook=self._promote_hook)
            self.sdk = RetryingClient(
                self.server, self.client,
                policy=BackoffPolicy(max_attempts=5, base_delay=2.0,
                                     max_delay=16.0, seed=self.seed))
            self._seen_heals = 0
        else:
            self._db = db
            if self.scrub_mode:
                self._rebind_scrubber(db)
        install_faults(db, self.plan)

    def _rebind_scrubber(self, db: FastVer) -> None:
        """Direct-mode scrubber over a (re-)provisioned database. The
        repair source is the oracle's expected-current map — standing in
        for an operator's external backup, which is all a topology
        without a quorum group has. The audit trail survives
        re-provisioning: the ledger and lifetime stats carry over."""
        from repro.scrub import Scrubber
        fresh = Scrubber(db, budget_pages=4,
                         candidate_fn=self._model_candidate)
        old = self._scrubber
        if old is not None:
            fresh.ledger = old.ledger
            fresh.pages_checked = old.pages_checked
            fresh.mismatches_found = old.mismatches_found
            fresh.repairs_done = old.repairs_done
            fresh.full_passes = old.full_passes
        self._scrubber = fresh

    def _model_candidate(self, key_bits: int) -> tuple[bool, bytes | None]:
        value = self.current.get(key_bits)
        return value is not None, value

    def _absorb_heals(self) -> None:
        """Fold server-side self-healing into the oracle: each completed
        heal rolled the database back to its last durable state, so the
        oracle's ``current`` must roll back to ``committed`` with it (a
        salvage already rebased ``committed`` via the hook)."""
        heals = self.server.supervisor.heals
        if heals != self._seen_heals:
            self.report.recoveries += heals - self._seen_heals
            self._seen_heals = heals
            self.current = dict(self.committed)
            # Rolled back: provisionally-served rot never settled.
            self._unsettled_serves.clear()

    def _server_salvage_hook(self, items: list[tuple[int, bytes]]):
        """Called by the server's lenient salvage with the records it
        recovered: validate each against the write history (a value we
        never wrote is fabrication — a hard failure) and rebase the oracle
        on the survivors, which are the durable truth from here on."""
        self.report.salvages += 1
        survivors: list[tuple[int, bytes]] = []
        for k, payload in items:
            if k in self.history and payload not in self.history[k]:
                if self._latent_rot_fired():
                    # Injected rot reached the log the salvage rebuilt
                    # from; a lenient rebuild resurrecting the damaged
                    # bytes is a rot casualty the oracle drops (data
                    # loss — salvage's documented trade), not the host
                    # fabricating state.
                    continue
                self.report.hard_failures.append(
                    f"salvage fabrication: key {k} holds {payload!r}, "
                    f"never written")
                continue
            survivors.append((k, payload))
        self.current = dict(survivors)
        self.committed = dict(survivors)
        return survivors

    def _promote_hook(self, items: list[tuple[int, bytes]]) -> None:
        """Called at each failover promotion with the promoted database's
        records. Two checks, then the oracle rebases wholesale:

        * **fabrication** — a value never written is the standby lying;
        * **lost acknowledged write** — a key the oracle expects (an op
          the SDK reported applied) missing from the promoted state means
          the handoff dropped an acknowledged write. The *value* may
          legitimately be newer than the oracle's (a completed put whose
          response was still in flight), which the history check covers.
        """
        promoted: dict[int, bytes] = {}
        for k, payload in items:
            if k in self.history and payload not in self.history[k]:
                self.report.hard_failures.append(
                    f"failover fabrication: key {k} holds {payload!r}, "
                    f"never written")
                continue
            promoted[k] = payload
        for k, expected in self.current.items():
            if expected is not None and k not in promoted:
                self.report.hard_failures.append(
                    f"failover lost acknowledged write: key {k} "
                    f"(expected {expected!r}) missing after promotion")
        self.report.failovers += 1
        self.current = dict(promoted)
        self.committed = dict(promoted)

    def _recover_sequence(self) -> None:
        """Restore service after an availability error: checkpoint
        recovery first, lenient log-scan salvage as the last resort."""
        for _ in range(self.MAX_RECOVER_ATTEMPTS):
            try:
                self.db.recover(self.db.last_checkpoint)
                self.report.recoveries += 1
                # Un-checkpointed (provisional, unsettled) work rolls back.
                self.current = dict(self.committed)
                self._unsettled_serves.clear()
                return
            except AvailabilityError:
                self.report.availability_errors += 1
                continue
            except RecoveryError:
                break  # the checkpoint itself is damaged: salvage
        self._salvage()

    def _salvage(self) -> None:
        """The checkpoint is unusable: lenient-rebuild the log, validate
        every survivor against the oracle's history (a value we never
        wrote is fabrication — a hard failure), and re-provision."""
        self.report.salvages += 1
        device = self.db.store.log.device
        device.faults = None  # the salvage read pass itself runs clean
        salvaged = rebuild_index_from_log(
            device, self.db.store.log.tail_address,
            ordered_width=self.db.config.key_width, strict=False)
        width = self.db.config.key_width
        survivors: list[tuple[int, bytes]] = []
        for key, value, _aux in salvaged.items():
            if key.length != width:
                continue  # merkle plumbing; the fresh instance rebuilds it
            payload = getattr(value, "payload", None)
            if payload is None:
                continue
            k = key.bits
            if k in self.history and payload not in self.history[k]:
                if self._latent_rot_fired():
                    # Rot casualty, not fabrication: drop the damaged
                    # record (data loss) — see _server_salvage_hook.
                    continue
                self.report.hard_failures.append(
                    f"salvage fabrication: key {k} holds {payload!r}, "
                    f"never written")
                continue
            survivors.append((k, payload))
        # The salvaged snapshot (possibly stale, never fabricated) is the
        # truth now; keys that didn't survive are data loss, not lies.
        self.current = {}
        self.committed = {}
        self._unsettled_serves.clear()
        self._provision(sorted(survivors))

    # ------------------------------------------------------------------
    # The op loop
    # ------------------------------------------------------------------
    def _maintain(self) -> None:
        """Periodic epoch close + checkpoint (the §7 durability cadence)."""
        if self.batched_mode:
            # The maintain marker lands on a burst boundary, never inside
            # one — mirrors the server flushing open batches first.
            self._flush_burst()
        if self.server is not None:
            try:
                self.server.maintain()
            except Exception:
                self._absorb_heals()
                raise
            # A heal inside maintain() rolled the database back before the
            # checkpoint was cut; roll the oracle back before promoting.
            self._absorb_heals()
            self._check_settlement()
            self.committed = dict(self.current)
            return
        self.db.verify()
        self._check_settlement()
        self.db.checkpoint()
        self.committed = dict(self.current)

    def _check_settlement(self) -> None:
        """An epoch just settled cleanly (no alarm, no rollback). Any
        rot-damaged answer still provisionally outstanding has now
        settled silently — the escape the §7 deferral is *not* allowed
        to produce."""
        if self._unsettled_serves:
            self.report.hard_failures.append(
                f"provisional rot-damaged answer settled with no "
                f"detection: {self._unsettled_serves[0]}")
            self._unsettled_serves.clear()

    def _one_op(self, kind: str, k: int, payload: bytes | None) -> None:
        if self.batched_mode:
            self._burst.append((kind, k, payload))
            if len(self._burst) >= self.BURST:
                self._flush_burst()
            return
        if self.server is not None:
            self._one_op_server(kind, k, payload)
            return
        self.report.ops_attempted += 1
        if kind == OP_GET:
            result = self.db.get(self.client, k, worker=k % 2)
            expected = self.current.get(k)
            if result.payload != expected:
                if not self._note_provisional_serve(
                        f"get({k}) returned {result.payload!r}, "
                        f"oracle says {expected!r}"):
                    self.report.hard_failures.append(
                        f"silent wrong answer: get({k}) returned "
                        f"{result.payload!r}, oracle says {expected!r}")
                return
        else:
            self.db.put(self.client, k, payload, worker=k % 2)
            self.current[k] = payload
            self.history.setdefault(k, set()).add(payload)
        self.report.ops_ok += 1

    def _one_op_server(self, kind: str, k: int, payload: bytes | None) -> None:
        """One op through the full pipeline: SDK -> server -> FastVer.

        The SDK's contract makes the oracle tractable: a return means the
        operation was applied exactly once; a raise means it provably
        never was (the SDK cancels before giving up). Heals that happened
        mid-call are folded in *before* this op's own effect, because the
        attempt that finally succeeded ran after the last heal."""
        self.report.ops_attempted += 1
        if kind == OP_PUT:
            # Record the *attempted* value up front: a put interrupted
            # mid-apply can still leave its record in the log, where a
            # later salvage may legitimately resurrect it.
            self.history.setdefault(k, set()).add(payload)
        try:
            if kind == OP_GET:
                result = self.sdk.get(k)
            else:
                result = self.sdk.put(k, payload)
        except Exception:
            self._absorb_heals()
            raise
        self._absorb_heals()
        if kind == OP_GET:
            # A degraded read is served from the durable tier and says so;
            # its truth is the checkpointed state, not the provisional one.
            expected = (self.committed.get(k) if result.degraded
                        else self.current.get(k))
            if result.payload != expected:
                if not self._note_provisional_serve(
                        f"get({k}) returned {result.payload!r} "
                        f"(degraded={result.degraded}), "
                        f"oracle says {expected!r}"):
                    self.report.hard_failures.append(
                        f"silent wrong answer: get({k}) returned "
                        f"{result.payload!r} (degraded={result.degraded}), "
                        f"oracle says {expected!r}")
                return
        else:
            self.current[k] = payload
        self.report.ops_ok += 1

    def _classify_burst_error(self, desc: str, err: Exception) -> bool:
        """Tri-state classification of one burst ticket's typed error.
        Returns True when the error escalated past the recovery ladder."""
        if isinstance(err, UnrecoverableError):
            self.report.availability_errors += 1
            return True
        if isinstance(err, AvailabilityError):
            self.report.availability_errors += 1
        elif isinstance(err, IntegrityError):
            if self._latent_rot_fired():
                self.report.integrity_detections += 1
            else:
                self.report.hard_failures.append(
                    f"{desc}: spurious {type(err).__name__} with no "
                    f"tampering: {err}")
        else:
            self.report.hard_failures.append(
                f"{desc}: untyped {type(err).__name__}: {err}")
        return False

    def _flush_burst(self) -> None:
        """Drive one accumulated burst through the batched serving loop.

        The oracle has to understand *batched* completion: tickets resolve
        in submission order, and ops on the same key land in the same
        shard (worker = key bits), so same-key effects commit in order
        even though different shards settle independently. Puts resolve
        through ``cancel`` — definitive applied/not-applied even when an
        intra-pump heal rolled an already-committed batch back. A get's
        answer may predate such a heal, so it is also honest if it matches
        the pre-heal oracle state.
        """
        burst, self._burst = self._burst, []
        if not burst:
            return
        from repro.server import ServerRequest
        tickets: list[tuple] = []
        for kind, k, payload in burst:
            self.report.ops_attempted += 1
            bk = self.server.bitkey(k)
            if kind == OP_PUT:
                self.history.setdefault(k, set()).add(payload)
                op = self.client.make_put(bk, payload)
            else:
                op = self.client.make_get(bk)
            request = ServerRequest(
                kind, op,
                self.server.now + self.server.config.default_deadline,
                worker=bk.bits, generation=self.server.generation)
            try:
                ticket = self.server.submit(request)
            except AvailabilityError:
                # Shed or dropped on the wire: never admitted anywhere.
                self.report.availability_errors += 1
                continue
            tickets.append((kind, k, payload, ticket))
        self.server.pump()
        self._drain_pipeline(tickets)
        self._retry_fenced(tickets)
        pre = dict(self.current)
        self._absorb_heals()
        unrecoverable = False
        for kind, k, payload, ticket in tickets:
            if not ticket.done:
                self.report.hard_failures.append(
                    f"burst {kind} {k}: ticket left unresolved by pump")
                continue
            if kind == OP_PUT:
                outcome = self.server.cancel(self.client.client_id,
                                             ticket.request.nonce)
                if outcome is not None:
                    # In the completed table now = applied and surviving
                    # (a heal would have rolled a non-durable entry out).
                    self.current[k] = payload
                    pre[k] = payload
                if ticket.error is None:
                    self.report.ops_ok += 1
                elif self._classify_burst_error(f"burst put {k}",
                                                ticket.error):
                    unrecoverable = True
            elif ticket.error is not None:
                if self._classify_burst_error(f"burst get {k}",
                                              ticket.error):
                    unrecoverable = True
            else:
                result = ticket.result
                expected = (self.committed.get(k) if result.degraded
                            else self.current.get(k))
                if result.payload != expected and \
                        result.payload != pre.get(k):
                    self.report.hard_failures.append(
                        f"silent wrong answer: batched get({k}) returned "
                        f"{result.payload!r} (degraded={result.degraded}), "
                        f"oracle says {expected!r}")
                else:
                    self.report.ops_ok += 1
        if unrecoverable:
            raise UnrecoverableError(
                "a burst operation escalated past the recovery ladder")

    def _retry_fenced(self, tickets: list) -> None:
        """One redirect-and-retry round for burst tickets fenced by a
        mid-pump failover (``NotLeaderError``), mirroring what the SDK
        does for the per-op path: adopt the new generation's fence
        receipt, re-submit the *same* signed op (a fenced request was
        provably never applied, so its nonce is still fresh) under the
        current generation, and pump once more. Tickets are updated in
        place; a retry that fails again is classified like any other."""
        from repro.errors import NotLeaderError
        from repro.server import ServerRequest

        fenced = [i for i, (_, _, _, t) in enumerate(tickets)
                  if isinstance(t.error, NotLeaderError)]
        if not fenced:
            return
        generation, fence = self.server.leader_info(self.client.client_id)
        if fence is not None:
            self.client.accept_fence(fence)
        retried = False
        for i in fenced:
            kind, k, payload, ticket = tickets[i]
            old = ticket.request
            request = ServerRequest(
                kind, old.op,
                self.server.now + self.server.config.default_deadline,
                worker=old.worker, generation=generation, trace=old.trace)
            COUNTERS.retried += 1
            TRACER.record("retry", self.server.now, old.trace, attempt=1,
                          after="NotLeaderError")
            try:
                new_ticket = self.server.submit(request)
            except AvailabilityError:
                continue  # the original fenced error stands for this op
            tickets[i] = (kind, k, payload, new_ticket)
            retried = True
        if retried:
            self.server.pump()
            self._drain_pipeline(tickets)

    def _drain_pipeline(self, tickets: list) -> None:
        """Pump until every burst ticket's streamed receipt settles.
        Pipelined flushes resolve tickets on *later* pumps by design,
        so the burst oracle below would otherwise see in-flight work as
        unresolved. Bounded: a ticket still pending after the drain is
        a genuine liveness bug, and the unresolved-ticket hard failure
        in :meth:`_flush_burst` names it."""
        if not self.pipelined_mode:
            return
        for _ in range(8):
            if all(t.done for _, _, _, t in tickets):
                return
            self.server.pump()

    def _tamper_round(self, k: int) -> None:
        """Scheduled tampering: corrupt the store, demand detection."""
        install_faults(self.db, None)  # isolate: pure-integrity check
        try:
            if self.server is not None and self.server.degraded:
                # A prior op left recovery in flight; finish it (faults are
                # disarmed) so the tamper probes hit a healthy verifier.
                if not self.server.supervisor.try_heal():
                    self.report.hard_failures.append(
                        f"pre-tamper heal failed for key {k} with no "
                        f"faults armed")
                    return
                self._absorb_heals()
            # A put first, so the key's latest record is the in-memory
            # tail object the attack mutates (a flushed record would be
            # re-read from the immutable device and the tamper would be
            # a no-op, falsely reading as "undetected").
            staged = b"tmpr%04d" % (k % 10000)
            self.db.put(self.client, k, staged, worker=k % 2)
            self.current[k] = staged
            self.history.setdefault(k, set()).add(staged)
            tamper_value(self.db, k)
            try:
                self.db.get(self.client, k, worker=k % 2)
                self.db.flush()
                self.db.verify()
            except IntegrityError:
                self.report.integrity_detections += 1
            else:
                self.report.hard_failures.append(
                    f"tampering with key {k} went undetected through verify")
            # The store is poisoned either way; restore from the (clean)
            # pre-tamper checkpoint before continuing.
            if self.server is not None:
                # Route through the supervisor so the serving layer's own
                # bookkeeping (dedup table, caches) rolls back in step.
                if not self.server.force_heal():
                    self.report.hard_failures.append(
                        f"post-tamper heal failed for key {k} with no "
                        f"faults armed")
                self._absorb_heals()
            else:
                try:
                    self.db.recover(self.db.last_checkpoint)
                except RecoveryError:
                    # An earlier device fault corrupted the checkpoint's
                    # index blob: an undecodable checkpoint is treated the
                    # same as a missing one — fall through to salvage.
                    self._salvage()
                else:
                    self.report.recoveries += 1
                    self.current = dict(self.committed)
                    self._unsettled_serves.clear()
        finally:
            install_faults(self.db, self.plan)

    # ------------------------------------------------------------------
    # Background scrub (--scrub)
    # ------------------------------------------------------------------
    def _latent_rot_fired(self) -> bool:
        """Whether injected latent corruption has actually landed yet. An
        IntegrityError is an *expected detection* only when it has — the
        tri-state rule ("alarms only under real tampering") otherwise
        stands unchanged in --scrub mode."""
        return self.scrub_mode and (
            self.plan.fires("device.read.bitrot")
            + self.plan.fires("checkpoint.blob.bitrot")) > 0

    def _note_provisional_serve(self, desc: str) -> bool:
        """A read came back wrong while injected rot is live. For a
        *deferred* record that is §7 semantics, not an escape: the value
        is served provisionally and the aggregate set-hash check at epoch
        close is where the rot alarms. Track it — the detection (or a
        rollback) must land before the next clean settlement — and the
        tri-state rule stays intact for every other case."""
        if not self._latent_rot_fired():
            return False
        self._unsettled_serves.append(desc)
        self.report.provisional_serves += 1
        return True

    def _heal_after_detection(self, i: int) -> bool:
        """The verifier alarmed on injected rot; the store holds poisoned
        pages, so heal before the next touch re-trips the same alarm.
        Returns whether the soak can continue."""
        if self.server is not None:
            try:
                self.server.force_heal()
            except UnrecoverableError:
                self.report.unrecoverable = True
                self.report.availability_errors += 1
                return False
            except AvailabilityError:
                # The session failed under the armed faults; the server
                # stays degraded and later ops drive further sessions.
                self.report.availability_errors += 1
            self._absorb_heals()
            return True
        return self._try_recover(i)

    def _scrub_pump_direct(self, i: int) -> bool:
        """One budgeted scrub slice in direct mode (the server modes pump
        theirs from the serving loop). Returns whether the soak can
        continue."""
        try:
            self._scrubber.pump()
        except AvailabilityError:
            # A fault fired mid-repair. The enclave session may have
            # advanced past the host's clock mirror, so this is not
            # retriable in place: recover, like any availability error.
            self.report.availability_errors += 1
            return self._try_recover(i)
        except RepairForgeryError as exc:
            # The repair candidate came from the oracle's own model; the
            # enclave refusing it means the scrubber tried to install
            # something the authenticated state contradicts — with an
            # honest source that is a scrubber bug, not a detection.
            self.report.hard_failures.append(
                f"scrub repair rejected an honest candidate: "
                f"{type(exc).__name__}: {exc}")
        except IntegrityError as exc:
            # A repair session flushes the op backlog before it starts;
            # buffered poison from injected rot detonates there, exactly
            # like an op-time detection — heal, same as the op path.
            if self._latent_rot_fired():
                self.report.integrity_detections += 1
                return self._heal_after_detection(i)
            self.report.hard_failures.append(
                f"scrub pump raised spurious {type(exc).__name__} with "
                f"no rot landed: {exc}")
        return True

    def _check_scrub_convergence(self) -> None:
        """The --scrub acceptance oracle: once the faults are disarmed,
        the scrubber must converge — a full pass finding nothing and the
        quarantine drained to zero. Anything left quarantined means a
        rotted page the repair path could not heal."""
        if self.report.unrecoverable:
            return
        install_faults(self.db, None)
        try:
            converged = False
            scrub = None
            for attempt in range(2):
                if self.server is not None:
                    if self.server.degraded or self.server._integrity_dirty:
                        # Finish the heal the last alarm started, now
                        # that the boundary is clean.
                        if not self.server.force_heal():
                            self.report.hard_failures.append(
                                "post-soak heal failed with no faults "
                                "armed")
                            return
                        self._absorb_heals()
                        # The heal may have salvaged (fresh database);
                        # disarm the boundary on whatever is live now.
                        install_faults(self.db, None)
                    scrub = self.server.scrubber()
                else:
                    scrub = self._scrubber
                try:
                    # Settle first: any rot-damaged answer still served
                    # provisionally must alarm at this epoch close (or
                    # _check_settlement flags the silent escape), and the
                    # op backlog drains so convergence starts clean.
                    self._maintain()
                    converged = scrub.scrub_to_convergence()
                except IntegrityError as exc:
                    if attempt == 0 and self._latent_rot_fired():
                        # Poison buffered during the soak's tail
                        # detonated inside the convergence drain: that
                        # is the detection the rot owed us. Heal once
                        # (the boundary is clean) and converge on the
                        # healed store.
                        self.report.integrity_detections += 1
                        if self.server is not None:
                            if not self.server.force_heal():
                                self.report.hard_failures.append(
                                    "post-detection heal failed with no "
                                    "faults armed")
                                return
                            self._absorb_heals()
                        else:
                            self._recover_sequence()
                        install_faults(self.db, None)
                        continue
                    self.report.hard_failures.append(
                        f"scrub convergence raised {type(exc).__name__} "
                        f"with no faults armed: {exc}")
                break
        finally:
            install_faults(self.db, self.plan)
        self.report.scrub_converged = converged
        self.report.scrub_pages = scrub.pages_checked
        self.report.scrub_mismatches = scrub.mismatches_found
        self.report.scrub_repairs = scrub.repairs_done
        self.report.quarantined_final = \
            len(self.db.store.quarantined_addresses)
        self.report.repair_ledger_digest = scrub.ledger.digest()
        if not converged or self.report.quarantined_final:
            self.report.hard_failures.append(
                f"scrub did not converge: "
                f"{self.report.quarantined_final} page(s) still "
                f"quarantined after the faults were disarmed")

    def _try_recover(self, i: int) -> bool:
        """Run the recovery sequence; an untyped escape from *recovery* is
        itself a tri-state violation (recovery must succeed or fail with a
        typed error). Returns whether the soak can continue."""
        try:
            self._recover_sequence()
            return True
        except Exception as exc:
            self.report.hard_failures.append(
                f"recovery after op {i} failed untyped: "
                f"{type(exc).__name__}: {exc}")
            return False

    def _check_convergence(self) -> None:
        """Post-soak leader convergence (the quorum-HA acceptance check):
        once the faults are disarmed and one quiet pump lets the group
        repair itself, there must be exactly one live leader enclave
        holding (or, in the degenerate no-group mode, owed) a valid
        quorum lease. Skipped when the ladder legitimately ran out of
        rungs or the run ended mid-heal — those are availability
        outcomes, not split-brain."""
        if self.report.unrecoverable or self.server.degraded:
            return
        install_faults(self.db, None)  # settle with a clean boundary
        repl = self.server.replication
        try:
            if not self.db.enclave.probe()["alive"]:
                # The last kill landed after the final op, so no request
                # ever tripped the watchdog: run the heal the next op
                # would have triggered (promotion, in failover mode).
                self.server.force_heal()
            repl.pump()
            probe = self.db.enclave.probe()
            converged = bool(probe["alive"] and probe["loaded"]
                             and repl.lease_ok())
        except AvailabilityError:
            converged = False
        finally:
            install_faults(self.db, self.plan)
        if not converged:
            self.report.leader_converged = False
            self.report.hard_failures.append(
                "leader convergence failed: no single live leased leader "
                "after the soak settled")

    def run(self) -> ChaosReport:
        since_maintain = 0
        for i, (kind, k, payload) in enumerate(
                self.generator.operations(self.n_ops)):
            if kind not in (OP_GET, OP_PUT):
                kind, payload = OP_GET, None  # A-mix never scans; belt+braces
            try:
                self._one_op(kind, k, payload)
            except UnrecoverableError:
                # The ladder escalated: typed, definitive, run over. Not a
                # hard failure — the invariant held all the way down; the
                # operator gets the seed + trace repro handle in the error.
                self.report.unrecoverable = True
                self.report.availability_errors += 1
                break
            except AvailabilityError:
                self.report.availability_errors += 1
                # In --server mode the pipeline heals itself (supervisor +
                # SDK); a typed failure here is a definitively-abandoned
                # op, not a cue for harness-driven recovery.
                if self.server is None and not self._try_recover(i):
                    break
            except IntegrityError as exc:
                if self._latent_rot_fired():
                    # Injected bit rot really landed, and the verifier
                    # caught it on touch before answering: that is the
                    # detection the tri-state invariant demands.
                    self.report.integrity_detections += 1
                    if not self._heal_after_detection(i):
                        break
                else:
                    self.report.hard_failures.append(
                        f"op {i} ({kind} {k}): spurious "
                        f"{type(exc).__name__} with no tampering: {exc}")
            except Exception as exc:  # untyped escape = tri-state violation
                self.report.hard_failures.append(
                    f"op {i} ({kind} {k}): untyped {type(exc).__name__}: "
                    f"{exc}")
                break
            if self.scrub_mode and self.server is None and \
                    (i + 1) % self.SCRUB_EVERY == 0:
                if not self._scrub_pump_direct(i):
                    break
            since_maintain += 1
            if since_maintain >= self.VERIFY_EVERY:
                since_maintain = 0
                try:
                    self._maintain()
                except UnrecoverableError:
                    self.report.unrecoverable = True
                    self.report.availability_errors += 1
                    break
                except AvailabilityError:
                    self.report.availability_errors += 1
                    if self.server is None and not self._try_recover(i):
                        break
                except IntegrityError as exc:
                    if self._latent_rot_fired():
                        # Rot on a deferred page is individually
                        # unverifiable by design; the aggregate set-hash
                        # check at epoch close is where it surfaces.
                        self.report.integrity_detections += 1
                        if not self._heal_after_detection(i):
                            break
                    else:
                        self.report.hard_failures.append(
                            f"maintenance after op {i}: spurious "
                            f"{type(exc).__name__}: {exc}")
            if self.tamper_every and (i + 1) % self.tamper_every == 0:
                if self.batched_mode:
                    try:
                        self._flush_burst()
                    except UnrecoverableError:
                        self.report.unrecoverable = True
                        self.report.availability_errors += 1
                        break
                self._tamper_round(k)
        if self.batched_mode and self._burst:
            try:
                self._flush_burst()
            except UnrecoverableError:
                self.report.unrecoverable = True
                self.report.availability_errors += 1
        self.report.fault_fires = {
            point: self.plan.fires(point)
            for point in self.plan.points()
            if self.plan.fires(point)
        }
        self.report.receipts_dropped = self.db.receipt_channel.dropped
        if self.pipelined_mode and self.server is not None:
            self.report.pipelined_batches = self.server.batches_pipelined
        if self.server is not None and self.server.replication is not None:
            self._check_convergence()  # may run one settling heal first
            repl = self.server.replication
            self.report.failovers = self.server.supervisor.failovers
            self.report.shipped_batches = repl.shipped_batches
            self.report.repl_rejects = repl.rejects
            self.report.standbys = self.n_standbys
            self.report.delta_resyncs = repl.delta_resyncs
            self.report.snapshot_resyncs = repl.snapshot_resyncs
            self.report.lease_expiries = repl.lease_expiries
        if self.scrub_mode:
            self._check_scrub_convergence()
        self.report.trace_digest = self.plan.trace_digest()
        spool = TRACER.sink
        if spool is not None:
            self.report.spool_events = len(spool)
            # The replay contract is checked on *every* soak (the spool
            # always rides along): a spool that cannot reconstruct the
            # ring's spans is broken observability, a hard failure.
            self.report.spool_replay_ok = replay_fidelity(TRACER, spool)
            if not self.report.spool_replay_ok:
                self.report.hard_failures.append(
                    "trace spool failed replay fidelity: a span in the "
                    "ring is not reconstructable from the spool")
        if self.obs_mode:
            self.report.exemplar_digest = LATENCIES.exemplar_digest()
            if self.server is not None and self.server._slo is not None:
                self.report.slo_alerts = self.server._slo.alerts
                self.report.slo_firing = sorted(self.server._slo.firing())
        if self.report.hard_failures or self.report.unrecoverable:
            # Forensics keyed by the fault seed (the repro handle). With
            # the spool attached — every soak — the dump covers the whole
            # run within retention, not just the ring's last events.
            source = spool if spool is not None else TRACER
            events = (source.events() if spool is not None
                      else TRACER.last(self.FORENSICS_LAST))
            self.report.forensics = {
                "seed": self.seed,
                "trace_digest": self.report.trace_digest,
                "ring_dropped": TRACER.dropped,
                "source": "spool" if spool is not None else "ring",
                "spool": spool.stats() if spool is not None else None,
                "events": [e.as_dict() for e in events],
            }
        return self.report


def run_chaos(seed: int = 7, ops: int = 2000, records: int = 200,
              plan: FaultPlan | None = None,
              tamper_every: int | None = None,
              server: bool = False, failover: bool = False,
              batched: bool = False, standbys: int = 1,
              scrub: bool = False,
              pipelined: bool = False,
              obs: bool = False,
              spool_dir: str | None = None) -> ChaosReport:
    """Run one chaos soak; see the module docstring for the contract.

    ``server=True`` drives the workload through the full serving pipeline
    (admission queue -> deadline -> idempotent dedup -> circuit breaker ->
    FastVer) via the retrying client SDK, with the serving-layer fault
    points armed on top of the storage/enclave mix; recovery is then the
    *server's* job (supervisor watchdog + heal ladder), not the harness's.

    ``failover=True`` (implies server mode) additionally attaches a warm
    standby fed by authenticated log shipping, arms the ``repl.*`` fault
    points, and schedules two primary-enclave kills mid-run, so recovery
    is dominated by failover promotion; the oracle then also demands that
    no acknowledged write is lost across a promotion and that no value
    the workload never wrote appears in the promoted state.

    ``batched=True`` (implies server mode) runs the serving loop with
    group commit enabled: ops accumulate into bursts, each burst is
    settled by one pump over per-shard batches, and the oracle resolves
    put outcomes through the idempotency table (``cancel``), which stays
    definitive under batched completion order.

    ``pipelined=True`` (implies batched mode) additionally decouples
    settlement from dispatch: per-shard flushes go out as pipelined
    ecalls whose receipts stream back across the following pumps, so
    the burst loop drains with extra pumps until every ticket settles.
    The oracle is unchanged — streamed completion must be observably
    equivalent to synchronous completion — and legacy (non-pipelined)
    digests stay byte-identical because the report folds the pipelined
    tallies into the digest only when the mode is armed.

    The observability layer (repro.obs) is reset at the start of each
    soak and a persistent trace spool is attached, so the trace ring and
    histograms afterwards describe exactly this run — ``python -m repro
    trace`` dumps them, and a hard failure's ``forensics`` field dumps
    the *whole run* from the spool (bounded by retention, not by the
    ring). ``spool_dir`` persists the spool's segments to disk for
    ``python -m repro obs replay``. The spool is behaviorally inert —
    attaching it changes no counter, latency, or event — so legacy
    digests stay pinned.

    ``obs=True`` additionally arms the SLO burn-rate engine on the
    server (server modes; a tight p99 budget so a stressed soak
    deterministically fires) and folds the alert tallies and the
    exemplar digest into the run digest.

    ``standbys`` sets the replication-group size in failover mode. Above
    1, the soak arms the correlated same-tick primary+standby double
    kill and the lease-partition point, and the report additionally
    asserts post-soak leader convergence — exactly one live leased
    leader once the group settles.

    ``scrub=True`` arms *latent* corruption (persistent device bit rot,
    checkpoint-blob rot at rest, injected repair failures) and runs the
    background scrubber against it — in the serving loop in server
    modes, as a standalone pump (repairing from the oracle model, the
    stand-in for an operator's external backup) in direct mode. An
    IntegrityError is then an accepted outcome *once rot has actually
    fired* (the verifier caught the rot on touch); the report gains the
    scrub/repair tallies and the repair-ledger digest; and the run ends
    with a convergence check — faults disarmed, one clean full pass,
    zero quarantined pages — whose failure is a hard failure.
    """
    obs_reset()
    TRACER.attach_sink(TraceSpool(directory=spool_dir))
    try:
        return _ChaosRun(seed, ops, records, plan, tamper_every, server,
                         failover, batched, standbys, scrub, pipelined,
                         obs).run()
    finally:
        if TRACER.sink is not None:
            TRACER.sink.flush()

"""Mean-time-to-repair benchmark: record-level repair vs whole-store heals.

The self-healing claim (ISSUE 8 / ROADMAP) is quantitative: when latent
rot corrupts *one* page, repairing that page from the quorum group must
be drastically cheaper than the whole-store rungs the heal ladder would
otherwise fall through to. Three costs are measured on identically
seeded servers, in simulated ticks:

* **repair** — one device page rots; the scrubber quarantines it and
  patches it back from the standby's committed state, paying a fixed
  base plus a per-page cost — independent of database size;
* **salvage** — the lenient log-scan rebuild (no usable checkpoint):
  fixed base plus a per-record cost over the whole store;
* **restore** — the checkpoint-restore rung: fixed base plus a
  per-record scan cost over the whole store.

The acceptance bars: single-page repair MTTR ≤ 10% of salvage and
≤ 2% of cold restore. A fourth measurement drives the same op phase
with the background scrubber on and off; the steady-state throughput
tax must stay ≤ 10%. Results land in ``BENCH_repair.json``.
"""

from __future__ import annotations

from repro.backoff import BackoffPolicy
from repro.core.fastver import FastVer, FastVerConfig
from repro.core.protocol import Client
from repro.crypto.mac import MacKey
from repro.errors import AvailabilityError
from repro.obs import reset as obs_reset
from repro.server.pipeline import FastVerServer, ServerConfig

#: Single-page repair may cost at most this fraction of a lenient salvage.
MTTR_VS_SALVAGE_MAX = 0.10
#: ... and at most this fraction of a cold checkpoint restore.
MTTR_VS_RESTORE_MAX = 0.02
#: Steady-state throughput tax of scrub-on vs scrub-off.
OVERHEAD_MAX = 0.10


def _build_server(records: int, ops: int, seed: int, standbys: int = 0,
                  scrub: bool = True):
    """A server with ``records`` loaded and ``ops`` SDK operations worth
    of history, checkpointed every 100 ops. Returns ``(server, sdk)``."""
    from repro.client import RetryingClient
    from repro.workloads.ycsb import OP_PUT, WORKLOADS, YcsbGenerator

    items = [(k, b"seed-%d" % k) for k in range(records)]
    db = FastVer(
        FastVerConfig(key_width=32, n_workers=2, partition_depth=4,
                      cache_capacity=256),
        items=items)
    client = Client(1, MacKey.generate(f"bench-repair-{seed}"))
    db.register_client(client)
    db.verify()
    db.checkpoint()
    server = FastVerServer(db, ServerConfig(scrub_enabled=scrub),
                           warm=items)
    if standbys:
        from repro.replication import ReplicationConfig
        server.attach_standby(
            config=ReplicationConfig(n_standbys=standbys))
    sdk = RetryingClient(server, client,
                         policy=BackoffPolicy(max_attempts=3, base_delay=2.0,
                                              max_delay=8.0, seed=seed))
    generator = YcsbGenerator(WORKLOADS["YCSB-A"], records,
                              distribution="zipfian", theta=0.9, seed=seed)
    op_t0 = server.now
    for i, (kind, k, payload) in enumerate(generator.operations(ops)):
        if kind == OP_PUT:
            sdk.put(k, payload)
        else:
            sdk.get(k)
        if (i + 1) % 100 == 0:
            server.maintain()
    return server, sdk, server.now - op_t0


def _rot_one_page(server: FastVerServer) -> tuple[int, object]:
    """Persistently flip one byte of a merkle-at-rest device page, exactly
    like ``device.read.bitrot`` does, and return ``(address, key)``.

    The victim is chosen the way latent rot finds its victims: a data
    record that is neither verifier-cached nor deferred (so the at-rest
    bytes are load-bearing) and whose current version already lives on
    the device."""
    db = server.db
    store = db.store
    device = store.log.device
    for key, address in sorted(store.index.snapshot().items(),
                               key=lambda kv: kv[1]):
        if key.length != db.config.key_width:
            continue
        if key in db.cached_where or key in db.deferred_index:
            continue
        if store.log.in_memory(address) or address not in device:
            continue
        blob = device._pages[address]
        pos = len(blob) - 1 - (address % max(1, len(blob) // 3))
        device._pages[address] = (blob[:pos] + bytes([blob[pos] ^ 0x20])
                                  + blob[pos + 1:])
        return address, key
    raise RuntimeError("bench store has no merkle-at-rest page to rot")


def _measure_repair(server: FastVerServer) -> tuple[float, dict]:
    """Rot one page, let the scrubber find and repair it; return the
    ticks from quarantine to verified patch plus the ledger tail."""
    scrub = server.scrubber()
    address, key = _rot_one_page(server)
    # Drive budgeted slices until the walk reaches the rotted page (the
    # detection cost is the scrub cadence, not part of MTTR: rot sat
    # latent either way). Quarantine marks the clock start.
    for _ in range(10000):
        scrub.pump()
        if address in server.db.store.quarantined_addresses:
            break
    else:
        raise RuntimeError(f"scrubber never quarantined rotted page "
                           f"{address}")
    before = server.now
    repaired = scrub._repair_quarantined()
    mttr = server.now - before
    if not repaired or server.db.store.quarantined_addresses:
        raise RuntimeError("single-page repair did not converge")
    action = scrub.ledger.actions[-1]
    return mttr, {"address": address, "key_length": key.length,
                  "source": action.source, "tier": action.reason,
                  "outcome": action.outcome}


def _measure_restore(server: FastVerServer) -> float:
    """Reboot the enclave and heal through the checkpoint-restore rung."""
    server.db.enclave.reboot()
    try:
        server.force_heal()
    except AvailabilityError:
        pass
    if server.degraded:
        raise RuntimeError("bench server failed to heal after the reboot")
    return server.supervisor.last_recovery_ticks


def _measure_salvage(server: FastVerServer) -> float:
    """Void the checkpoint so the restore rung fails, forcing the heal
    ladder down to the lenient log-scan salvage."""
    server.db.last_checkpoint = None
    server.db.enclave.reboot()
    try:
        server.force_heal()
    except AvailabilityError:
        pass
    if server.degraded:
        raise RuntimeError("bench server failed to salvage")
    if server.supervisor.salvages < 1:
        raise RuntimeError("heal ladder never reached the salvage rung")
    return server.supervisor.last_recovery_ticks


def run_repair_bench(records: int = 1200, ops: int = 400,
                     seed: int = 7) -> dict:
    """Measure repair vs salvage vs restore plus the scrub tax; return
    the JSON-ready comparison."""
    obs_reset()
    # Repair measurement runs against a quorum member: the authentic
    # bytes come back from the standby's committed state.
    repair_srv, _, _ = _build_server(records, ops, seed, standbys=1)
    repair_mttr, repair_detail = _measure_repair(repair_srv)

    obs_reset()
    cold, _, _ = _build_server(records, ops, seed, scrub=False)
    restore_rto = _measure_restore(cold)

    obs_reset()
    salv, _, _ = _build_server(records, ops, seed, scrub=False)
    salvage_rto = _measure_salvage(salv)

    # Steady-state tax: the same op phase, scrub on vs off, no rot.
    obs_reset()
    _, _, on_ticks = _build_server(records, ops, seed, scrub=True)
    obs_reset()
    _, _, off_ticks = _build_server(records, ops, seed, scrub=False)
    overhead = ((on_ticks - off_ticks) / off_ticks if off_ticks
                else float("inf"))

    vs_salvage = (repair_mttr / salvage_rto if salvage_rto
                  else float("inf"))
    vs_restore = (repair_mttr / restore_rto if restore_rto
                  else float("inf"))
    return {
        "records": records,
        "ops": ops,
        "seed": seed,
        "repair_mttr_ticks": round(repair_mttr, 6),
        "repair_detail": repair_detail,
        "salvage_rto_ticks": round(salvage_rto, 6),
        "restore_rto_ticks": round(restore_rto, 6),
        "mttr_vs_salvage": round(vs_salvage, 6),
        "max_mttr_vs_salvage": MTTR_VS_SALVAGE_MAX,
        "mttr_vs_restore": round(vs_restore, 6),
        "max_mttr_vs_restore": MTTR_VS_RESTORE_MAX,
        "scrub_on_op_ticks": round(on_ticks, 6),
        "scrub_off_op_ticks": round(off_ticks, 6),
        "scrub_overhead": round(overhead, 6),
        "max_scrub_overhead": OVERHEAD_MAX,
        "ok": (vs_salvage <= MTTR_VS_SALVAGE_MAX
               and vs_restore <= MTTR_VS_RESTORE_MAX
               and overhead <= OVERHEAD_MAX),
    }

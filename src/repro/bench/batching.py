"""Group-commit batching benchmark: crossings amortized per batch size.

Runs the same seeded YCSB-A stream through the batched serving loop at a
sweep of ``max_batch_ops`` settings and reports, per batch size, the
enclave crossings spent, the crossings the group commit saved over
one-ecall-per-op, the average batch fill, and the modeled throughput
under the calibrated cost model (which charges the profile's crossing
cost per ecall — so the amortization curve falls straight out of the
counters; no separate timing path exists to disagree with).

Receipt-synchronous framing: every batch settles inside the pump that
staged it, so batch size 1 is the honest one-crossing-per-op baseline
and larger sizes show pure crossing amortization at identical answers.

The acceptance bar (ISSUE): batch-64 modeled throughput at least 3x the
batch-1 baseline, and ``crossings_saved`` monotone in batch size. The
sweep is recorded to ``BENCH_batching.json`` by ``bench-batching``,
along with a before/after note for the serving layer's memoized
``bitkey`` derivation, per-sweep-point latency histogram summaries
(admission wait, batch residency, ecall service), and a tracing
on/off comparison pinning the observability layer's modeled-throughput
overhead under :data:`TRACING_OVERHEAD_BOUND`.
"""

from __future__ import annotations

import time

from repro.core.fastver import FastVer, FastVerConfig
from repro.core.protocol import Client
from repro.crypto.mac import MacKey
from repro.enclave.costmodel import SIMULATED
from repro.instrument import COUNTERS
from repro.obs import LATENCIES, set_enabled
from repro.obs import reset as obs_reset
from repro.server.pipeline import FastVerServer, ServerConfig, ServerRequest
from repro.sim.costs import DEFAULT_COSTS
from repro.workloads.ycsb import OP_PUT, WORKLOADS, YcsbGenerator

#: The sweep the ISSUE names.
BATCH_SIZES = (1, 4, 16, 64, 256)
TARGET_RATIO = 3.0
N_WORKERS = 4


def _build_server(records: int, batch: int, seed: int):
    items = [(k, b"seed-%d" % k) for k in range(records)]
    db = FastVer(
        FastVerConfig(key_width=32, n_workers=N_WORKERS, partition_depth=3,
                      cache_capacity=256,
                      # Headroom for the largest shard batch, so staging
                      # never auto-flushes mid-batch; epoch closes are
                      # measured separately from the op phase.
                      log_capacity=2048, batch_ops=None),
        items=items)
    client = Client(1, MacKey.generate(f"bench-batching-{seed}"))
    db.register_client(client)
    db.verify()
    db.checkpoint()
    server = FastVerServer(db, ServerConfig(
        group_commit=True, max_batch_ops=batch,
        max_batch_ticks=float(10 ** 9),
        queue_capacity=max(64, 4 * batch),
        default_deadline=float(10 ** 12)), warm=items)
    return db, client, server


def _run_one(batch: int, records: int, ops: int, seed: int) -> dict:
    """One sweep point: drive ``ops`` through the batched loop at this
    ``max_batch_ops``, with the counters scoped to the op phase only."""
    db, client, server = _build_server(records, batch, seed)
    generator = YcsbGenerator(WORKLOADS["YCSB-A"], records,
                              distribution="zipfian", theta=0.9, seed=seed)
    requests = []
    for kind, k, payload in generator.operations(ops):
        bk = server.bitkey(k)
        if kind == OP_PUT:
            op = client.make_put(bk, payload)
            requests.append(ServerRequest("put", op, float(10 ** 12),
                                          worker=bk.bits))
        else:
            op = client.make_get(bk)
            requests.append(ServerRequest("get", op, float(10 ** 12),
                                          worker=bk.bits))
    # Submission waves sized so every shard can fill to ``batch`` within
    # one pump (N_WORKERS shards share each wave).
    wave = max(1, N_WORKERS * batch)
    obs_reset()
    COUNTERS.reset()
    i = 0
    while i < len(requests):
        for request in requests[i:i + wave]:
            server.submit(request)
        server.pump()
        i += wave
    crossings = COUNTERS.enclave_entries
    modeled_ns = DEFAULT_COSTS.total_ns(COUNTERS, SIMULATED, records)
    row = {
        "batch": batch,
        "ops": ops,
        "crossings": crossings,
        "crossings_saved": COUNTERS.crossings_saved,
        "batches": COUNTERS.batches,
        "batch_fill_avg": round(COUNTERS.batch_fill_avg, 3),
        "crossing_ns_per_op": round(
            DEFAULT_COSTS.amortized_crossing_ns(ops, crossings, SIMULATED), 2),
        "modeled_ns_per_op": round(modeled_ns / ops, 2),
        "throughput_mops": round(ops * 1000.0 / modeled_ns, 6),
        # Per-sweep-point latency histograms (admission wait, batch
        # residency, ecall service) from the op phase just measured.
        "latency": {name: LATENCIES.get(name).summary()
                    for name in LATENCIES.names()
                    if LATENCIES.get(name).count},
    }
    # Maintenance (epoch close) charged outside the op-phase scope.
    COUNTERS.reset()
    db.verify()
    row["verify_crossings"] = COUNTERS.enclave_entries
    return row, server


def _bitkey_note(server, records: int, probes: int = 20000) -> dict:
    """Before/after micro-measure of the memoized bitkey derivation on a
    warm cache (wall-clock, recorded for the PR note — not asserted)."""
    t0 = time.perf_counter()
    for k in range(probes):
        server.db.data_key(k % records)
    raw_ns = (time.perf_counter() - t0) / probes * 1e9
    server.bitkey(0)  # ensure at least one warm entry
    t0 = time.perf_counter()
    for k in range(probes):
        server.bitkey(k % records)
    cached_ns = (time.perf_counter() - t0) / probes * 1e9
    return {
        "derive_ns_per_call": round(raw_ns, 1),
        "memoized_ns_per_call": round(cached_ns, 1),
        "speedup": round(raw_ns / cached_ns, 2) if cached_ns else None,
        "hits": server.bitkey_hits,
        "misses": server.bitkey_misses,
    }


#: Documented ceiling on how far tracing may move modeled throughput.
TRACING_OVERHEAD_BOUND = 0.10


def tracing_overhead(records: int = 400, ops: int = 2000, seed: int = 7,
                     batch: int = 16) -> dict:
    """Run one sweep point with the observability layer off, then on, and
    compare modeled throughput. Modeled time derives purely from the work
    counters and tracing never bumps a counter, so the delta must stay
    within :data:`TRACING_OVERHEAD_BOUND` (it is 0 by construction; the
    bound guards against tracing ever leaking into the cost model)."""
    try:
        set_enabled(False)
        off, _ = _run_one(batch, records, ops, seed)
        set_enabled(True)
        on, _ = _run_one(batch, records, ops, seed)
    finally:
        set_enabled(True)
    base = off["throughput_mops"]
    delta = abs(on["throughput_mops"] - base) / base if base else 0.0
    return {
        "batch": batch,
        "throughput_mops_tracing_off": base,
        "throughput_mops_tracing_on": on["throughput_mops"],
        "relative_delta": round(delta, 6),
        "bound": TRACING_OVERHEAD_BOUND,
        "ok": delta <= TRACING_OVERHEAD_BOUND,
    }


def run_batching_bench(records: int = 400, ops: int = 2000,
                       seed: int = 7) -> dict:
    """Sweep the batch sizes; return the JSON-ready comparison."""
    rows = []
    last_server = None
    for batch in BATCH_SIZES:
        row, server = _run_one(batch, records, ops, seed)
        rows.append(row)
        last_server = server
    by_batch = {row["batch"]: row for row in rows}
    base = by_batch[1]["throughput_mops"]
    ratio = by_batch[64]["throughput_mops"] / base if base else float("inf")
    saved = [row["crossings_saved"] for row in rows]
    monotone = all(a <= b for a, b in zip(saved, saved[1:]))
    overhead = tracing_overhead(records, ops, seed)
    return {
        "records": records,
        "ops": ops,
        "seed": seed,
        "n_workers": N_WORKERS,
        "rows": rows,
        "ratio_64_over_1": round(ratio, 4),
        "target_ratio": TARGET_RATIO,
        "crossings_saved_monotone": monotone,
        "bitkey_cache": _bitkey_note(last_server, records),
        "tracing_overhead": overhead,
        "ok": ratio >= TARGET_RATIO and monotone and overhead["ok"],
    }

"""Group-commit batching benchmark: crossings amortized per batch size.

Runs the same seeded YCSB-A stream through the batched serving loop at a
sweep of ``max_batch_ops`` settings and reports, per batch size, the
enclave crossings spent, the crossings the group commit saved over
one-ecall-per-op, the average batch fill, and the modeled throughput
under the calibrated cost model (which charges the profile's crossing
cost per ecall — so the amortization curve falls straight out of the
counters; no separate timing path exists to disagree with).

Receipt-synchronous framing: every batch settles inside the pump that
staged it, so batch size 1 is the honest one-crossing-per-op baseline
and larger sizes show pure crossing amortization at identical answers.

Pipelined framing: with ``pipeline=True`` the per-shard flushes become
independent ecalls whose receipts stream back across later pumps, so
the host stages the next wave while the verifier digests the last one
and the enclave side runs shard-parallel. Those rows are modeled with
:meth:`CostModel.pipelined_total_ns` and must clear
:data:`PIPELINED_TARGET_RATIO` over the synchronous batch-64 row at
equal-or-better admission-wait p95.

Adaptive frontier: the epoch close (``maintain``) is the deferred-
verification cadence — it settles every pending receipt and charges
real verify crossings — so the frontier driver closes an epoch every
:data:`EPOCH_EVERY_BATCHES` dispatched batches. Bigger batches then
buy throughput (fewer batch ecalls *and* fewer epoch closes per op)
at the price of verified-latency p99, which is exactly the curve the
AIMD controller walks: the adaptive row must hold its declared p99
budget within :data:`FRONTIER_BUDGET_SLACK` while beating the modeled
throughput of every static batch size that also meets the budget.

The acceptance bar (ISSUE): batch-64 modeled throughput at least 3x the
batch-1 baseline, ``crossings_saved`` monotone in batch size, plus the
pipelined and adaptive-frontier bars above. The sweep is recorded to
``BENCH_batching.json`` by ``bench-batching``, along with a
before/after note for the serving layer's memoized ``bitkey``
derivation, per-sweep-point latency histogram summaries (admission
wait, batch residency, ecall service), and a tracing on/off comparison
pinning the observability layer's modeled-throughput overhead under
:data:`TRACING_OVERHEAD_BOUND`.
"""

from __future__ import annotations

import time

from repro.core.fastver import FastVer, FastVerConfig
from repro.core.protocol import Client
from repro.crypto.mac import MacKey
from repro.enclave.costmodel import SIMULATED
from repro.instrument import COUNTERS
from repro.obs import LATENCIES, set_enabled
from repro.obs import reset as obs_reset
from repro.server.pipeline import FastVerServer, ServerConfig, ServerRequest
from repro.sim.costs import DEFAULT_COSTS
from repro.workloads.ycsb import OP_PUT, WORKLOADS, YcsbGenerator

#: The sweep the ISSUE names.
BATCH_SIZES = (1, 4, 16, 64, 256)
TARGET_RATIO = 3.0
N_WORKERS = 4

#: Pipelined sweep points and their bar over the synchronous batch-64 row.
PIPELINED_BATCH_SIZES = (4, 16, 64)
PIPELINED_TARGET_RATIO = 1.5

#: Adaptive-frontier sweep: static sizes the controller must beat (among
#: those meeting the budget), the declared p99 verified-latency budget in
#: ticks, the epoch-close cadence in dispatched batches, and the slack
#: the adaptive row's measured p99 may carry over the budget.
FRONTIER_BATCH_SIZES = (4, 16, 64, 256)
FRONTIER_BUDGET_TICKS = 200.0
EPOCH_EVERY_BATCHES = 4
FRONTIER_BUDGET_SLACK = 1.10


def _build_server(records: int, batch: int, seed: int, **cfg):
    items = [(k, b"seed-%d" % k) for k in range(records)]
    db = FastVer(
        FastVerConfig(key_width=32, n_workers=N_WORKERS, partition_depth=3,
                      cache_capacity=256,
                      # Headroom for the largest shard batch, so staging
                      # never auto-flushes mid-batch; epoch closes are
                      # measured separately from the op phase.
                      log_capacity=2048, batch_ops=None),
        items=items)
    client = Client(1, MacKey.generate(f"bench-batching-{seed}"))
    db.register_client(client)
    db.verify()
    db.checkpoint()
    config = dict(
        group_commit=True, max_batch_ops=batch,
        max_batch_ticks=float(10 ** 9),
        queue_capacity=max(64, 4 * batch),
        default_deadline=float(10 ** 12))
    config.update(cfg)
    server = FastVerServer(db, ServerConfig(**config), warm=items)
    return db, client, server


def _stream(client, server, records: int, ops: int, seed: int) -> list:
    """The seeded YCSB-A request stream every sweep point replays."""
    generator = YcsbGenerator(WORKLOADS["YCSB-A"], records,
                              distribution="zipfian", theta=0.9, seed=seed)
    requests = []
    for kind, k, payload in generator.operations(ops):
        bk = server.bitkey(k)
        if kind == OP_PUT:
            op = client.make_put(bk, payload)
            requests.append(ServerRequest("put", op, float(10 ** 12),
                                          worker=bk.bits))
        else:
            op = client.make_get(bk)
            requests.append(ServerRequest("get", op, float(10 ** 12),
                                          worker=bk.bits))
    return requests


def _drain(server, tickets: list, pumps: int = 64) -> None:
    """Pump until every streamed receipt settles (pipelined runs leave
    batches in flight when the stream ends)."""
    for _ in range(pumps):
        if all(t.done for t in tickets):
            return
        server.pump()


def _run_one(batch: int, records: int, ops: int, seed: int,
             pipeline: bool = False, obs_full: bool = False,
             maintain_every_waves: int | None = None) -> dict:
    """One sweep point: drive ``ops`` through the batched loop at this
    ``max_batch_ops``, with the counters scoped to the op phase only.

    With ``pipeline=True`` the flushes dispatch without blocking on
    receipts and the wave is pinned at the synchronous batch-64 wave
    (``N_WORKERS * 64``) so the admission-wait distribution is directly
    comparable to that row; modeled time switches to the overlapped
    :meth:`CostModel.pipelined_total_ns`.

    ``obs_full=True`` arms the whole observability pipeline — persistent
    spool, exemplar sampling, SLO engine — for the overhead pin;
    ``maintain_every_waves`` closes an epoch every N submission waves so
    the SLO engine and exemplars actually have settlements to chew on
    (both arms of the overhead comparison must use the same cadence)."""
    wave = N_WORKERS * 64 if pipeline else max(1, N_WORKERS * batch)
    cfg = dict(pipeline=pipeline,
               queue_capacity=max(64, 4 * batch, wave))
    if obs_full:
        from repro.obs.slo import SloConfig
        cfg["slo"] = SloConfig()
    db, client, server = _build_server(records, batch, seed, **cfg)
    requests = _stream(client, server, records, ops, seed)
    # Submission waves sized so every shard can fill to ``batch`` within
    # one pump (N_WORKERS shards share each wave).
    obs_reset()
    if obs_full:
        from repro.obs import TRACER
        from repro.obs.sink import TraceSpool
        TRACER.attach_sink(TraceSpool())
    COUNTERS.reset()
    tickets = []
    i = 0
    waves = 0
    while i < len(requests):
        for request in requests[i:i + wave]:
            tickets.append(server.submit(request))
        server.pump()
        i += wave
        waves += 1
        if maintain_every_waves and waves % maintain_every_waves == 0:
            server.maintain()
    if pipeline:
        _drain(server, tickets)
    crossings = COUNTERS.enclave_entries
    if pipeline:
        modeled_ns = DEFAULT_COSTS.pipelined_total_ns(
            COUNTERS, SIMULATED, records, N_WORKERS)
    else:
        modeled_ns = DEFAULT_COSTS.total_ns(COUNTERS, SIMULATED, records)
    row = {
        "mode": "pipelined" if pipeline else "sync",
        "batch": batch,
        "ops": ops,
        "crossings": crossings,
        "crossings_saved": COUNTERS.crossings_saved,
        "batches": COUNTERS.batches,
        "batch_fill_avg": round(COUNTERS.batch_fill_avg, 3),
        "crossing_ns_per_op": round(
            DEFAULT_COSTS.amortized_crossing_ns(ops, crossings, SIMULATED), 2),
        "modeled_ns_per_op": round(modeled_ns / ops, 2),
        "throughput_mops": round(ops * 1000.0 / modeled_ns, 6),
        # Per-sweep-point latency histograms (admission wait, batch
        # residency, ecall service) from the op phase just measured.
        "latency": {name: LATENCIES.get(name).summary()
                    for name in LATENCIES.names()
                    if LATENCIES.get(name).count},
    }
    if pipeline:
        row["batches_pipelined"] = server.batches_pipelined
        row["inflight_batches_max"] = COUNTERS.inflight_batches_max
    # Maintenance (epoch close) charged outside the op-phase scope.
    COUNTERS.reset()
    db.verify()
    row["verify_crossings"] = COUNTERS.enclave_entries
    return row, server


def _bitkey_note(server, records: int, probes: int = 20000) -> dict:
    """Before/after micro-measure of the memoized bitkey derivation on a
    warm cache (wall-clock, recorded for the PR note — not asserted)."""
    t0 = time.perf_counter()
    for k in range(probes):
        server.db.data_key(k % records)
    raw_ns = (time.perf_counter() - t0) / probes * 1e9
    server.bitkey(0)  # ensure at least one warm entry
    t0 = time.perf_counter()
    for k in range(probes):
        server.bitkey(k % records)
    cached_ns = (time.perf_counter() - t0) / probes * 1e9
    return {
        "derive_ns_per_call": round(raw_ns, 1),
        "memoized_ns_per_call": round(cached_ns, 1),
        "speedup": round(raw_ns / cached_ns, 2) if cached_ns else None,
        "hits": server.bitkey_hits,
        "misses": server.bitkey_misses,
    }


#: Documented ceiling on how far tracing may move modeled throughput.
TRACING_OVERHEAD_BOUND = 0.10


#: Epoch-close cadence of the overhead comparison (both arms): the SLO
#: engine evaluates per epoch and exemplars sample settled latencies, so
#: a cadence-free run would pin an idle pipeline.
OVERHEAD_MAINTAIN_EVERY_WAVES = 8


def tracing_overhead(records: int = 400, ops: int = 2000, seed: int = 7,
                     batch: int = 16) -> dict:
    """Run one sweep point with the observability layer off, then with
    the *full* pipeline armed — tracing + persistent spool + exemplar
    sampling + SLO engine — and compare modeled throughput. Both arms
    close epochs at the same cadence, so the only difference is the
    observability work. Modeled time derives purely from the work
    counters; the obs layer never bumps one and the SLO wiring's own
    counters are unpriced, so the delta must stay within
    :data:`TRACING_OVERHEAD_BOUND` (it is 0 by construction; the bound
    guards against observability ever leaking into the cost model)."""
    try:
        set_enabled(False)
        off, _ = _run_one(
            batch, records, ops, seed,
            maintain_every_waves=OVERHEAD_MAINTAIN_EVERY_WAVES)
        set_enabled(True)
        on, _ = _run_one(
            batch, records, ops, seed, obs_full=True,
            maintain_every_waves=OVERHEAD_MAINTAIN_EVERY_WAVES)
    finally:
        set_enabled(True)
    base = off["throughput_mops"]
    delta = abs(on["throughput_mops"] - base) / base if base else 0.0
    return {
        "batch": batch,
        "armed": "trace+spool+exemplars+slo",
        "throughput_mops_tracing_off": base,
        "throughput_mops_tracing_on": on["throughput_mops"],
        "relative_delta": round(delta, 6),
        "bound": TRACING_OVERHEAD_BOUND,
        "ok": delta <= TRACING_OVERHEAD_BOUND,
    }


def _run_frontier_point(records: int, ops: int, seed: int,
                        batch: int | None = None,
                        budget: float | None = None) -> dict:
    """One adaptive-frontier point: the pipelined loop with the epoch
    close (the deferred-verification cadence) run every
    :data:`EPOCH_EVERY_BATCHES` dispatched batches, so the batch bound
    trades verified-latency p99 against modeled throughput — bigger
    batches mean fewer batch ecalls *and* fewer epoch closes per op,
    but receipts wait longer for their epoch. Static points pin
    ``max_batch_ops`` (linger at the controller's own law,
    ``controller_ticks_per_op * batch``); the adaptive point declares
    ``latency_budget_p99=budget`` and lets the AIMD controller walk the
    bounds from the same starting batch every static point also gets."""
    start = batch if batch is not None else 16
    cfg = {"pipeline": True, "max_batch_ticks": 4.0 * start,
           "queue_capacity": 256}
    if budget is not None:
        cfg["latency_budget_p99"] = budget
    db, client, server = _build_server(records, start, seed, **cfg)
    requests = _stream(client, server, records, ops, seed)
    wave = 16
    obs_reset()
    COUNTERS.reset()
    tickets = []
    epoch_closes = 0
    last_epoch_batches = 0
    i = 0
    while i < len(requests):
        for request in requests[i:i + wave]:
            tickets.append(server.submit(request))
        server.pump()
        i += wave
        if COUNTERS.batches - last_epoch_batches >= EPOCH_EVERY_BATCHES:
            server.maintain()
            epoch_closes += 1
            last_epoch_batches = COUNTERS.batches
    _drain(server, tickets)
    server.maintain()  # the tail's receipts settle at this final close
    epoch_closes += 1
    modeled_ns = DEFAULT_COSTS.pipelined_total_ns(
        COUNTERS, SIMULATED, records, N_WORKERS)
    row = {
        "mode": "adaptive" if budget is not None else "static",
        "batch": batch,
        "ops": ops,
        "epoch_closes": epoch_closes,
        "crossings": COUNTERS.enclave_entries,
        "batch_fill_avg": round(COUNTERS.batch_fill_avg, 3),
        "p99_verified_ticks": round(
            LATENCIES.get("verified_latency").percentile(99.0), 3),
        "modeled_ns_per_op": round(modeled_ns / ops, 2),
        "throughput_mops": round(ops * 1000.0 / modeled_ns, 6),
    }
    if budget is not None:
        row["budget_ticks"] = budget
        row["controller"] = server.health()["controller"]
    return row


def adaptive_frontier(records: int = 400, ops: int = 2000, seed: int = 7,
                      budget: float = FRONTIER_BUDGET_TICKS) -> dict:
    """Sweep static batch sizes against the adaptive controller on the
    frontier driver and check the ISSUE bar: the adaptive row holds the
    declared p99 budget within :data:`FRONTIER_BUDGET_SLACK` and beats
    the modeled throughput of every static size that also meets it."""
    statics = [_run_frontier_point(records, ops, seed, batch=b)
               for b in FRONTIER_BATCH_SIZES]
    adaptive = _run_frontier_point(records, ops, seed, budget=budget)
    bound = budget * FRONTIER_BUDGET_SLACK
    meeting = [r for r in statics if r["p99_verified_ticks"] <= bound]
    holds = adaptive["p99_verified_ticks"] <= bound
    beats = all(adaptive["throughput_mops"] > r["throughput_mops"]
                for r in meeting)
    return {
        "budget_ticks": budget,
        "budget_slack": FRONTIER_BUDGET_SLACK,
        "epoch_every_batches": EPOCH_EVERY_BATCHES,
        "rows": statics + [adaptive],
        "static_meeting_budget": [r["batch"] for r in meeting],
        "adaptive_p99_verified_ticks": adaptive["p99_verified_ticks"],
        "adaptive_holds_budget": holds,
        "adaptive_beats_meeting_statics": beats,
        "ok": holds and beats and bool(meeting),
    }


def run_batching_bench(records: int = 400, ops: int = 2000,
                       seed: int = 7) -> dict:
    """Sweep the batch sizes; return the JSON-ready comparison."""
    rows = []
    last_server = None
    for batch in BATCH_SIZES:
        row, server = _run_one(batch, records, ops, seed)
        rows.append(row)
        last_server = server
    by_batch = {row["batch"]: row for row in rows}
    base = by_batch[1]["throughput_mops"]
    ratio = by_batch[64]["throughput_mops"] / base if base else float("inf")
    saved = [row["crossings_saved"] for row in rows]
    monotone = all(a <= b for a, b in zip(saved, saved[1:]))
    overhead = tracing_overhead(records, ops, seed)
    # Pipelined sweep: best row must clear PIPELINED_TARGET_RATIO over
    # the synchronous batch-64 row at equal-or-better admission-wait p95.
    pipelined_rows = []
    for batch in PIPELINED_BATCH_SIZES:
        row, _ = _run_one(batch, records, ops, seed, pipeline=True)
        pipelined_rows.append(row)
    sync64 = by_batch[64]
    best = max(pipelined_rows, key=lambda r: r["throughput_mops"])
    pipelined_ratio = (best["throughput_mops"] / sync64["throughput_mops"]
                       if sync64["throughput_mops"] else float("inf"))

    def _wait_p95(row: dict) -> float:
        stats = row["latency"].get("admission_wait")
        return stats["p95"] if stats else 0.0

    wait_ok = _wait_p95(best) <= _wait_p95(sync64)
    frontier = adaptive_frontier(records, ops, seed)
    return {
        "records": records,
        "ops": ops,
        "seed": seed,
        "n_workers": N_WORKERS,
        "rows": rows,
        "ratio_64_over_1": round(ratio, 4),
        "target_ratio": TARGET_RATIO,
        "crossings_saved_monotone": monotone,
        "pipelined_rows": pipelined_rows,
        "pipelined_ratio_over_sync64": round(pipelined_ratio, 4),
        "pipelined_target_ratio": PIPELINED_TARGET_RATIO,
        "pipelined_best_batch": best["batch"],
        "pipelined_wait_p95": _wait_p95(best),
        "sync64_wait_p95": _wait_p95(sync64),
        "pipelined_wait_ok": wait_ok,
        "adaptive_frontier": frontier,
        "bitkey_cache": _bitkey_note(last_server, records),
        "tracing_overhead": overhead,
        "ok": (ratio >= TARGET_RATIO and monotone and overhead["ok"]
               and pipelined_ratio >= PIPELINED_TARGET_RATIO and wait_ok
               and frontier["ok"]),
    }

"""Benchmark harness shared by the per-figure benches in benchmarks/."""

from repro.bench.harness import (
    BenchRow,
    make_fastver,
    op_count,
    print_table,
    run_baseline,
    run_fastver,
    scale_factor,
    scaled,
)

__all__ = [
    "BenchRow",
    "make_fastver",
    "op_count",
    "print_table",
    "run_baseline",
    "run_fastver",
    "scale_factor",
    "scaled",
]

"""Recovery-time-objective benchmark: warm failover vs cold restore.

Builds two identical servers over the same seeded workload, fails the
primary enclave in each, and measures the simulated ticks each recovery
path charges:

* **restore** — no standby attached: the supervisor's checkpoint-restore
  rung pays a fixed base plus a per-record scan cost over the whole
  store;
* **failover** — warm standby attached: promotion pays a fixed base plus
  a per-entry cost over only the *drained tail* (acknowledged writes not
  yet shipped), which is bounded by the shipping cadence rather than the
  database size.

The acceptance bar (ISSUE 3 / ROADMAP) is failover RTO < 10% of the
cold-restore RTO; the ratio is recorded in ``BENCH_failover.json``.
"""

from __future__ import annotations

from repro.backoff import BackoffPolicy
from repro.core.fastver import FastVer, FastVerConfig
from repro.core.protocol import Client
from repro.crypto.mac import MacKey
from repro.errors import AvailabilityError
from repro.obs import LATENCIES
from repro.obs import reset as obs_reset
from repro.server.pipeline import FastVerServer, ServerConfig

TARGET_RATIO = 0.10


def _build_server(records: int, ops: int, seed: int,
                  standby: bool) -> FastVerServer:
    """A server with ``records`` loaded and ``ops`` SDK operations worth
    of history (checkpointed every 100), optionally with a warm standby."""
    from repro.client import RetryingClient
    from repro.workloads.ycsb import OP_PUT, WORKLOADS, YcsbGenerator

    items = [(k, b"seed-%d" % k) for k in range(records)]
    db = FastVer(
        FastVerConfig(key_width=32, n_workers=2, partition_depth=4,
                      cache_capacity=256),
        items=items)
    client = Client(1, MacKey.generate(f"bench-failover-{seed}"))
    db.register_client(client)
    db.verify()
    db.checkpoint()
    server = FastVerServer(db, ServerConfig(), warm=items)
    if standby:
        server.attach_standby()
    sdk = RetryingClient(server, client,
                         policy=BackoffPolicy(max_attempts=3, base_delay=2.0,
                                              max_delay=8.0, seed=seed))
    generator = YcsbGenerator(WORKLOADS["YCSB-A"], records,
                              distribution="zipfian", theta=0.9, seed=seed)
    for i, (kind, k, payload) in enumerate(generator.operations(ops)):
        if kind == OP_PUT:
            sdk.put(k, payload)
        else:
            sdk.get(k)
        if (i + 1) % 100 == 0:
            server.maintain()
    return server


def _measure_rto(server: FastVerServer, destroy: bool) -> float:
    """Fail the primary enclave and heal; the supervisor records what the
    successful heal session cost in simulated ticks.

    ``destroy=False`` reboots the enclave (volatile state lost; the
    checkpoint-restore rung applies). ``destroy=True`` tears it down
    outright — restore-in-place is impossible, the strongest case for
    failover."""
    if destroy:
        server.db.enclave.teardown()
    else:
        server.db.enclave.reboot()
    try:
        server.force_heal()
    except AvailabilityError:
        pass  # a failed session still leaves the server degraded
    if server.degraded:
        raise RuntimeError("bench server failed to heal after the fault")
    return server.supervisor.last_recovery_ticks


def run_failover_bench(records: int = 1200, ops: int = 400,
                       seed: int = 7) -> dict:
    """Measure both recovery paths; return the JSON-ready comparison."""
    obs_reset()
    cold = _build_server(records, ops, seed, standby=False)
    restore_rto = _measure_rto(cold, destroy=False)
    restore_latency = {name: LATENCIES.get(name).summary()
                       for name in LATENCIES.names()
                       if LATENCIES.get(name).count}

    obs_reset()
    warm = _build_server(records, ops, seed, standby=True)
    failover_rto = _measure_rto(warm, destroy=True)
    assert warm.generation == 1, "warm path did not fail over"
    failover_latency = {name: LATENCIES.get(name).summary()
                        for name in LATENCIES.names()
                        if LATENCIES.get(name).count}

    ratio = failover_rto / restore_rto if restore_rto else float("inf")
    return {
        "records": records,
        "ops": ops,
        "seed": seed,
        "restore_rto_ticks": restore_rto,
        "failover_rto_ticks": failover_rto,
        "ratio": round(ratio, 6),
        "target_ratio": TARGET_RATIO,
        # Latency histogram summaries from each run's op phase (the warm
        # run's verified_latency includes ops settled across a failover).
        "latency": {"restore_run": restore_latency,
                    "failover_run": failover_latency},
        "ok": ratio < TARGET_RATIO,
    }

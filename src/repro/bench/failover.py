"""Recovery-time-objective benchmark: warm failover vs cold restore.

Builds two identical servers over the same seeded workload, fails the
primary enclave in each, and measures the simulated ticks each recovery
path charges:

* **restore** — no standby attached: the supervisor's checkpoint-restore
  rung pays a fixed base plus a per-record scan cost over the whole
  store;
* **failover** — warm standby attached: promotion pays a fixed base plus
  a per-entry cost over only the *drained tail* (acknowledged writes not
  yet shipped), which is bounded by the shipping cadence rather than the
  database size.

The acceptance bar (ISSUE 3 / ROADMAP) is failover RTO < 10% of the
cold-restore RTO; the ratio is recorded in ``BENCH_failover.json``.

The quorum-HA rows (ISSUE 7) extend the comparison:

* **quorum failover** — the same kill against an N=3 group: promotion
  now pays vote collection across the quorum plus the winner's tail
  drain; the bar is ≤ 2× the single-standby failover RTO (the price of
  split-brain safety stays in the same league);
* **delta vs snapshot resync** — rejoin one detached member of the
  group twice, once via the retained-tail delta path (cost scales with
  the gap) and once via the full snapshot rebuild (cost scales with the
  record count); the bar is delta ≥ 5× faster at a ≤ 1-epoch lag.
"""

from __future__ import annotations

from repro.backoff import BackoffPolicy
from repro.core.fastver import FastVer, FastVerConfig
from repro.core.protocol import Client
from repro.crypto.mac import MacKey
from repro.errors import AvailabilityError
from repro.obs import LATENCIES
from repro.obs import reset as obs_reset
from repro.server.pipeline import FastVerServer, ServerConfig

TARGET_RATIO = 0.10
#: Quorum (N=3) failover may cost at most this multiple of the
#: single-standby failover RTO.
QUORUM_RTO_MULTIPLE = 2.0
#: Delta resync must beat the snapshot rebuild by at least this factor
#: at a ≤ 1-epoch lag.
DELTA_SPEEDUP_FLOOR = 5.0


def _build_server(records: int, ops: int, seed: int,
                  standbys: int = 0):
    """A server with ``records`` loaded and ``ops`` SDK operations worth
    of history (checkpointed every 100), optionally with a replication
    group of ``standbys`` warm members. Returns ``(server, sdk)``."""
    from repro.client import RetryingClient
    from repro.workloads.ycsb import OP_PUT, WORKLOADS, YcsbGenerator

    items = [(k, b"seed-%d" % k) for k in range(records)]
    db = FastVer(
        FastVerConfig(key_width=32, n_workers=2, partition_depth=4,
                      cache_capacity=256),
        items=items)
    client = Client(1, MacKey.generate(f"bench-failover-{seed}"))
    db.register_client(client)
    db.verify()
    db.checkpoint()
    server = FastVerServer(db, ServerConfig(), warm=items)
    if standbys:
        from repro.replication import ReplicationConfig
        server.attach_standby(
            config=ReplicationConfig(n_standbys=standbys))
    sdk = RetryingClient(server, client,
                         policy=BackoffPolicy(max_attempts=3, base_delay=2.0,
                                              max_delay=8.0, seed=seed))
    generator = YcsbGenerator(WORKLOADS["YCSB-A"], records,
                              distribution="zipfian", theta=0.9, seed=seed)
    for i, (kind, k, payload) in enumerate(generator.operations(ops)):
        if kind == OP_PUT:
            sdk.put(k, payload)
        else:
            sdk.get(k)
        if (i + 1) % 100 == 0:
            server.maintain()
    return server, sdk


def _measure_rto(server: FastVerServer, destroy: bool) -> float:
    """Fail the primary enclave and heal; the supervisor records what the
    successful heal session cost in simulated ticks.

    ``destroy=False`` reboots the enclave (volatile state lost; the
    checkpoint-restore rung applies). ``destroy=True`` tears it down
    outright — restore-in-place is impossible, the strongest case for
    failover."""
    if destroy:
        server.db.enclave.teardown()
    else:
        server.db.enclave.reboot()
    try:
        server.force_heal()
    except AvailabilityError:
        pass  # a failed session still leaves the server degraded
    if server.degraded:
        raise RuntimeError("bench server failed to heal after the fault")
    return server.supervisor.last_recovery_ticks


def _measure_resync(server, sdk, lag_writes: int = 24) -> tuple[float, float]:
    """Rejoin one group member via both resync paths; return the ticks
    each charged: ``(delta_ticks, snapshot_ticks)``.

    The member is detached (taken out of rotation, enclave intact) while
    ``lag_writes`` acknowledged writes accumulate — well under one
    epoch-marker interval, the ≤ 1-epoch-lag case the criterion names —
    then delta-resynced from the retained tail. For the snapshot row the
    same member's enclave is rebooted (volatile channel state gone), so
    the rejoin has no choice but the full rebuild over every record."""
    mgr = server.replication
    auto = mgr.config.auto_reattach
    mgr.config.auto_reattach = False  # keep pump() from healing it early
    try:
        idx = len(mgr.standbys) - 1
        mgr.standbys[idx].detached = True
        for i in range(lag_writes):
            sdk.put(i % 50, b"resync-%d" % i)
        mgr.pump()  # ship the lag to the live members
        before = server.now
        mgr.resync_standby(idx)
        delta_ticks = server.now - before
        assert mgr.delta_resyncs >= 1, "delta path did not run"

        member = mgr.standbys[idx]
        member.detached = True
        member.db.enclave.reboot()  # channel state lost: snapshot path
        member.failed = True  # what the next admit would conclude
        before = server.now
        mgr.resync_standby(idx)
        snapshot_ticks = server.now - before
        assert mgr.snapshot_resyncs >= 1, "snapshot path did not run"
    finally:
        mgr.config.auto_reattach = auto
    return delta_ticks, snapshot_ticks


def run_failover_bench(records: int = 1200, ops: int = 400,
                       seed: int = 7) -> dict:
    """Measure both recovery paths plus the quorum-HA rows; return the
    JSON-ready comparison."""
    obs_reset()
    cold, _ = _build_server(records, ops, seed)
    restore_rto = _measure_rto(cold, destroy=False)
    restore_latency = {name: LATENCIES.get(name).summary()
                       for name in LATENCIES.names()
                       if LATENCIES.get(name).count}

    obs_reset()
    warm, _ = _build_server(records, ops, seed, standbys=1)
    failover_rto = _measure_rto(warm, destroy=True)
    assert warm.generation == 1, "warm path did not fail over"
    failover_latency = {name: LATENCIES.get(name).summary()
                        for name in LATENCIES.names()
                        if LATENCIES.get(name).count}

    # Quorum group (N=3): same kill, promotion now collects a quorum of
    # votes; then rejoin a member via both resync paths on the promoted
    # leader.
    obs_reset()
    quorum, quorum_sdk = _build_server(records, ops, seed, standbys=3)
    quorum_rto = _measure_rto(quorum, destroy=True)
    assert quorum.generation == 1, "quorum path did not fail over"
    delta_ticks, snapshot_ticks = _measure_resync(quorum, quorum_sdk)
    quorum_latency = {name: LATENCIES.get(name).summary()
                      for name in LATENCIES.names()
                      if LATENCIES.get(name).count}

    ratio = failover_rto / restore_rto if restore_rto else float("inf")
    quorum_multiple = (quorum_rto / failover_rto if failover_rto
                       else float("inf"))
    delta_speedup = (snapshot_ticks / delta_ticks if delta_ticks
                     else float("inf"))
    return {
        "records": records,
        "ops": ops,
        "seed": seed,
        "restore_rto_ticks": restore_rto,
        "failover_rto_ticks": failover_rto,
        "ratio": round(ratio, 6),
        "target_ratio": TARGET_RATIO,
        "quorum": {
            "n_standbys": 3,
            "rto_ticks": quorum_rto,
            "multiple_of_single": round(quorum_multiple, 6),
            "max_multiple": QUORUM_RTO_MULTIPLE,
            "delta_resync_ticks": round(delta_ticks, 6),
            "snapshot_resync_ticks": round(snapshot_ticks, 6),
            "delta_speedup": round(delta_speedup, 6),
            "min_delta_speedup": DELTA_SPEEDUP_FLOOR,
        },
        # Latency histogram summaries from each run's op phase (the warm
        # run's verified_latency includes ops settled across a failover).
        "latency": {"restore_run": restore_latency,
                    "failover_run": failover_latency,
                    "quorum_run": quorum_latency},
        "ok": (ratio < TARGET_RATIO
               and quorum_multiple <= QUORUM_RTO_MULTIPLE
               and delta_speedup >= DELTA_SPEEDUP_FLOOR),
    }

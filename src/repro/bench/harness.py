"""Shared benchmark harness: scaling, store factories, table printing.

Every figure-reproduction bench builds on this module so that all systems
run under identical measurement. The paper's experiments use database
sizes up to 128M records and 4 billion operations; by default we divide
sizes by ``REPRO_SCALE`` (default 800) and cap op counts, while the cost
model is always told the *paper-scale* record count so memory-hierarchy
effects match the figure being reproduced. Set ``FULL_SCALE=1`` to run
paper-scale sizes (hours of wall time).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro import FastVer, FastVerConfig, new_client
from repro.baselines import CachedMerkleStore, DeferredStore, plain_merkle_store
from repro.enclave.costmodel import SGX, SIMULATED, EnclaveCostProfile
from repro.instrument import COUNTERS
from repro.sim.executor import RunResult, SimulatedExecutor
from repro.workloads.ycsb import WorkloadSpec, YcsbGenerator


def scale_factor() -> int:
    """Divisor applied to paper DB sizes (1 when FULL_SCALE=1)."""
    if os.environ.get("FULL_SCALE") == "1":
        return 1
    return int(os.environ.get("REPRO_SCALE", "800"))


def scaled(paper_records: int, minimum: int = 1000) -> int:
    """Down-scale a paper database size."""
    return max(minimum, paper_records // scale_factor())


def op_count(scaled_records: int, multiplier: float = 2.0,
             cap: int = 60_000) -> int:
    """A sensible op count for a scaled run: enough to touch the working
    set a few times without blowing the wall-clock budget."""
    if os.environ.get("FULL_SCALE") == "1":
        cap = 1 << 62
    return min(cap, max(2_000, int(scaled_records * multiplier)))


@dataclass
class BenchRow:
    """One printed row of a figure's table."""

    label: str
    throughput_mops: float
    latency_s: float
    extra: dict

    def format(self) -> str:
        extras = "  ".join(f"{k}={v}" for k, v in self.extra.items())
        return (f"{self.label:<34} {self.throughput_mops:>10.3f} Mops/s  "
                f"latency {self.latency_s:>8.4f} s  {extras}")


def print_table(title: str, rows: list[BenchRow]) -> None:
    bar = "=" * 96
    print(f"\n{bar}\n{title}   [scale 1/{scale_factor()}]\n{bar}")
    for row in rows:
        print(row.format())
    print(bar)


# ---------------------------------------------------------------------------
# Standard run recipes
# ---------------------------------------------------------------------------
def make_fastver(records: int, n_workers: int = 4, partition_depth: int = 4,
                 cache_capacity: int = 512, key_width: int = 64,
                 batch_ops: int | None = None,
                 profile: EnclaveCostProfile = SIMULATED) -> tuple[FastVer, object]:
    """A loaded FastVer instance plus a registered client."""
    items = [(k, k.to_bytes(8, "big")) for k in range(records)]
    db = FastVer(
        FastVerConfig(key_width=key_width, n_workers=n_workers,
                      cache_capacity=cache_capacity,
                      partition_depth=partition_depth, batch_ops=batch_ops,
                      enclave_profile=profile),
        items=items,
    )
    client = new_client(1)
    db.register_client(client)
    return db, client


def sweep_fastver(spec: WorkloadSpec, scaled_records: int, paper_records: int,
                  n_workers: int, batch_sizes: list[int],
                  partition_depth: int = 5, distribution: str = "zipfian",
                  theta: float = 0.9, profile: EnclaveCostProfile = SIMULATED,
                  seed: int = 0) -> list[tuple[int, RunResult]]:
    """Load FastVer once, then measure one epoch per batch size.

    Each sweep point runs exactly ``batch`` operations followed by one
    verification, which yields one (throughput, latency) point of the
    Fig 8–12 frontier. Points share the loaded instance; each starts just
    after a verification, so they are comparable steady-state epochs.
    """
    from repro.sim.executor import SimulatedExecutor

    COUNTERS.reset()
    db, client = make_fastver(scaled_records, n_workers=n_workers,
                              partition_depth=partition_depth,
                              profile=profile)
    generator = YcsbGenerator(spec, scaled_records, distribution=distribution,
                              theta=theta, seed=seed)
    executor = SimulatedExecutor(db, client, n_workers, paper_records,
                                 profile=profile)
    out: list[tuple[int, RunResult]] = []
    for batch in batch_sizes:
        result = executor.run(generator, batch, verify_every=batch)
        out.append((batch, result))
    return out


def run_fastver(spec: WorkloadSpec, scaled_records: int, paper_records: int,
                n_workers: int, verify_every: int | None,
                partition_depth: int = 4, distribution: str = "zipfian",
                theta: float = 0.9, ops: int | None = None,
                profile: EnclaveCostProfile = SIMULATED,
                seed: int = 0) -> RunResult:
    """Load FastVer, run a workload phaseed with verifications, measure."""
    COUNTERS.reset()
    db, client = make_fastver(scaled_records, n_workers=n_workers,
                              partition_depth=partition_depth,
                              profile=profile)
    generator = YcsbGenerator(spec, scaled_records, distribution=distribution,
                              theta=theta, seed=seed)
    executor = SimulatedExecutor(db, client, n_workers, paper_records,
                                 profile=profile)
    count = ops if ops is not None else op_count(scaled_records)
    return executor.run(generator, count, verify_every=verify_every)


def run_faster_baseline(spec: WorkloadSpec, scaled_records: int,
                        paper_records: int, n_workers: int,
                        distribution: str = "zipfian", theta: float = 0.9,
                        ops: int | None = None, seed: int = 0) -> RunResult:
    """Unmodified FASTER (no verification at all): the §8.3 baseline.

    Ops run straight against the store substrate; the cost model prices
    only store touches and CAS work, with no enclave in the picture.
    """
    from repro.core.keys import BitKey
    from repro.core.records import DataValue
    from repro.enclave.costmodel import NONE
    from repro.sim.metrics import MetricsBuilder
    from repro.store.faster import FasterKV
    from repro.workloads.ycsb import OP_GET, OP_PUT, OP_INSERT

    COUNTERS.reset()
    width = 64
    store = FasterKV(ordered_width=width)
    for k in range(scaled_records):
        store.upsert(BitKey.data_key(k, width), DataValue(k.to_bytes(8, "big")))
    generator = YcsbGenerator(spec, scaled_records, distribution=distribution,
                              theta=theta, seed=seed)
    count = ops if ops is not None else op_count(scaled_records)
    builder = MetricsBuilder(n_workers, paper_records, profile=NONE)
    before = COUNTERS.snapshot()
    executed = 0
    for kind, key, arg in generator.operations(count):
        bk = BitKey.data_key(key % (1 << 63), width)
        if kind == OP_GET:
            store.read(bk)
        elif kind in (OP_PUT, OP_INSERT):
            pair = store.read(bk)
            if pair is None or not store.try_cas(bk, pair[0], pair[1],
                                                 DataValue(arg), pair[1]):
                store.upsert(bk, DataValue(arg))
        else:
            for k2, _, _ in store.scan_from(bk, arg):
                executed += 1
        executed += 1
    builder.add_ops(COUNTERS.snapshot().diff(before), executed)
    return RunResult(builder.build(), 0)


def run_baseline(kind: str, spec: WorkloadSpec, scaled_records: int,
                 paper_records: int, n_workers: int = 1,
                 distribution: str = "zipfian", theta: float = 0.9,
                 ops: int | None = None, verify_every: int | None = None,
                 key_width: int = 64, seed: int = 0,
                 final_verify: bool = True,
                 profile: EnclaveCostProfile = SIMULATED) -> RunResult:
    """Run one of the §8.5 baselines under the same measurement."""
    COUNTERS.reset()
    items = [(k, k.to_bytes(8, "big")) for k in range(scaled_records)]
    if kind == "M":
        db = plain_merkle_store(items, key_width=key_width, enclave_profile=profile)
    elif kind == "M1K":
        db = CachedMerkleStore(items, key_width=key_width, cache_capacity=1024,
                               enclave_profile=profile)
    elif kind == "M32K":
        db = CachedMerkleStore(items, key_width=key_width, cache_capacity=32768,
                               enclave_profile=profile)
    elif kind == "MV":
        db = CachedMerkleStore(items, key_width=key_width, cache_capacity=32768,
                               eager_propagation=True, enclave_profile=profile)
    elif kind == "DV":
        db = DeferredStore(items, key_width=key_width, n_workers=n_workers,
                           enclave_profile=profile)
    else:
        raise ValueError(f"unknown baseline {kind!r}")
    client = new_client(1)
    db.register_client(client)
    generator = YcsbGenerator(spec, scaled_records, distribution=distribution,
                              theta=theta, seed=seed)
    executor = SimulatedExecutor(db, client, n_workers, paper_records,
                                 profile=profile)
    count = ops if ops is not None else op_count(scaled_records)
    return executor.run(generator, count, verify_every=verify_every,
                        final_verify=final_verify)

"""Replication-group verifier HA (see docs/PROTOCOL.md).

N standby enclaves tail the primary's authenticated operation log: every
applied put and every epoch close is packaged into a MAC'd,
sequence-numbered, hash-chained *shipment* that fans out across the
untrusted host to every member of the group. The host can delay
shipments but can never forge, reorder, truncate, or splice the stream
undetected — each standby's enclave rejects anything that breaks the
chain, and a rejected shipment is simply retransmitted. The primary
serves under a leadership lease co-signed by a quorum of standby
enclaves; on primary failure the supervisor quorum-promotes the member
with the highest verified ``(epoch, seq)`` position, fences epochs past
everything the dead primary could have signed, and hands clients fence
receipts so no receipt from the deposed verifier is ever accepted again
— while the deposed primary's own lease renewal is starved by the
bumped generation, stopping it before its first rejected ecall. Lagging
or rejoining members catch up by *delta resync* (replaying only the
retained shipped tail), and tailing members double as read replicas
serving verified-stale reads under an explicit staleness budget.
"""

from repro.replication.manager import ReplicationConfig, ReplicationManager
from repro.replication.shipper import LogShipper, Shipment
from repro.replication.standby import StandbyVerifier

__all__ = [
    "LogShipper",
    "ReplicationConfig",
    "ReplicationManager",
    "Shipment",
    "StandbyVerifier",
]

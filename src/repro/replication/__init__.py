"""Warm-standby verifier replication (see docs/PROTOCOL.md).

A second simulated enclave tails the primary's authenticated operation
log: every applied put and every epoch close is packaged into a MAC'd,
sequence-numbered, hash-chained *shipment* that crosses the untrusted
host to the standby. The host can delay shipments but can never forge,
reorder, truncate, or splice the stream undetected — the standby's
enclave rejects anything that breaks the chain, and a rejected shipment
is simply retransmitted. On primary failure the supervisor promotes the
standby: it drains the unshipped tail, closes epochs up to a fence past
everything the dead primary could have signed, and hands clients fence
receipts so no receipt from the deposed verifier is ever accepted again.
"""

from repro.replication.manager import ReplicationConfig, ReplicationManager
from repro.replication.shipper import LogShipper, Shipment
from repro.replication.standby import StandbyVerifier

__all__ = [
    "LogShipper",
    "ReplicationConfig",
    "ReplicationManager",
    "Shipment",
    "StandbyVerifier",
]

"""A warm standby: a verifier enclave tailing the shipped log.

A :class:`StandbyVerifier` owns a full :class:`~repro.core.fastver.FastVer`
— its own simulated enclave, store, logs, and mirrors — bootstrapped from
a snapshot of the primary's data records and kept warm by applying each
admitted shipment. Two things distinguish it from a primary:

* its receipt channel is muted: the receipts it mints while tailing are
  redundant with the primary's (clients already hold them) and must not
  reach clients while the primary is the leader — exactly one live
  verifier identity speaks at a time;
* every put it applies is *independently* re-validated: the client MACs
  travel inside the shipped :class:`~repro.core.protocol.PutRequest`, so
  a host that somehow spliced a fabricated put into a shipment would
  still be caught by the standby's own enclave.

In a replication group the standby additionally carries its **vote** —
``(last_marker_epoch, last_admitted_seq)``, the highest primary epoch
marker it has verified and the highest shipment it admitted — which the
promotion quorum compares across members, and a **committed read view**:
puts land provisionally and only become servable as verified-stale reads
once an epoch marker's set-hash verification covers them, so a replica
read is always backed by a completed verification at a known primary
epoch. Epoch markers carry the *primary's* epoch number in-stream, which
is what makes votes and staleness comparable across standbys that were
bootstrapped at different times (their local epoch counters differ).

A standby also signs leadership **lease grants** for the primary; its
enclave refuses to grant a generation below the highest it has observed,
which is what starves a deposed primary of its lease (see
``repl_grant_lease``).
"""

from __future__ import annotations

from typing import Callable

from repro.core.fastver import FastVer, FastVerConfig
from repro.core.protocol import Client, ReceiptChannel
from repro.errors import (
    AvailabilityError,
    EnclaveUnavailableError,
    IntegrityError,
    ProtocolError,
)
from repro.replication.shipper import Entry, body_digest


class MutedReceiptChannel(ReceiptChannel):
    """Swallows receipts: the standby's signatures stay inside the group
    until promotion unmutes it (by swapping in a fresh live channel)."""

    def __init__(self):
        super().__init__()
        self.muted = 0

    def deliver(self, receipt, client) -> None:
        self.muted += 1


class StandbyVerifier:
    """A warm replica of the primary verifier, fed by admitted shipments."""

    def __init__(self, config: FastVerConfig,
                 items: list[tuple[int, bytes]],
                 clients: list[Client],
                 repl_key_bytes: bytes,
                 client_source: Callable[[int], Client | None] | None = None,
                 faults_source: Callable[[], object] | None = None,
                 standby_id: int = 0,
                 join_seq: int = 0,
                 join_chain: bytes | None = None,
                 as_of_epoch: int = 0):
        self.standby_id = standby_id
        self.db = FastVer(config, items=items)
        self.db.receipt_channel = MutedReceiptChannel()
        for client in clients:
            self.db.register_client(client)
        self._client_source = client_source
        #: Resolves the *server's* fault plan at fire time, so the
        #: standby's own fault points (standby.*) draw from the same
        #: seeded trace as every other boundary — including plans
        #: installed after this replica was bootstrapped.
        self._faults_source = faults_source
        # Establish the replication session (models mutual attestation).
        # The join position pins where in the group's single hash chain
        # this member starts admitting — a mid-stream joiner trusts the
        # (attested) position exactly as it trusts the session key.
        self.db._ecall("repl_set_key", repl_key_bytes, join_seq, join_chain)
        # Align the sealed floor with the bootstrap point.
        self.db.verify()
        self.db.checkpoint()
        self.applied_entries = 0
        self.applied_epochs = 0
        self.rejects = 0
        #: Highest shipment seq this member admitted (join_seq - 1 until
        #: the first admit). One half of the promotion vote.
        self.last_admitted_seq = join_seq - 1
        #: Highest PRIMARY epoch this member has verified via an in-stream
        #: marker. The other half of the vote, and the freshness bound for
        #: replica reads. Primary numbering, not the local epoch counter.
        self.last_marker_epoch = as_of_epoch
        #: Verified read view: key bits -> payload as of last_marker_epoch.
        #: The bootstrap snapshot was verified at construction, so it is
        #: committed; later puts wait in _provisional until a marker's
        #: set-hash verification covers them.
        self.committed_reads: dict[int, object] = {
            bits: payload for bits, payload in items}
        self._provisional: dict[int, object] = {}
        #: Set when the standby itself died (its enclave faulted); a
        #: failed standby is never promotable and never votes.
        self.failed = False
        #: Set by the manager when this member lagged past the retained
        #: tail mid-stream; it stops receiving deliveries until a resync
        #: (delta or snapshot) rejoins it.
        self.detached = False

    # ------------------------------------------------------------------
    def _fire(self, point: str) -> bool:
        plan = self._faults_source() if self._faults_source else None
        return plan is not None and plan.fire(point)

    # ------------------------------------------------------------------
    def healthy(self) -> bool:
        if self.failed:
            return False
        probe = self.db.enclave.probe()
        return bool(probe["alive"] and probe["loaded"])

    def vote(self) -> tuple[int, int]:
        """This member's promotion vote: the highest verified primary
        epoch and the highest admitted shipment seq. Quorum promotion
        picks the maximum vote; ties break on the lowest standby_id."""
        return (self.last_marker_epoch, self.last_admitted_seq)

    def grant_lease(self, generation: int, expires_at: float) -> bytes:
        """Sign one leadership lease grant for ``generation``. The
        enclave raises SplitBrainError for a regressed generation — the
        mechanism that starves a deposed primary's lease renewal."""
        return self.db._ecall("repl_grant_lease", generation, expires_at)

    # ------------------------------------------------------------------
    def admit(self, seq: int, prev_digest: bytes, body: bytes, tag: bytes,
              entries: list[Entry]) -> bool:
        """Admit one delivered shipment; apply its entries on success.

        ``body`` is the transit copy (possibly corrupted by the host);
        the digest is recomputed from it, so any flipped byte makes the
        in-enclave MAC check fail. Rejection (False) leaves the channel
        state untouched — the sender retransmits the canonical copy.
        """
        if self._fire("standby.reboot"):
            # The replica's enclave lost power: its volatile verifier
            # state — and the replication session with it — is gone. The
            # replica is failed, never resumed; the manager rebuilds it
            # from the primary on a later pump.
            self.db.enclave.reboot()
            self.failed = True
            return False
        digest = body_digest(body)
        try:
            self.db._ecall("repl_admit", seq, prev_digest, digest, tag)
        except IntegrityError:
            self.rejects += 1
            return False
        try:
            self.apply_entries(entries)
        except AvailabilityError:
            # Died partway through an admitted shipment: the replica's
            # state no longer matches its channel position, so it cannot
            # be resumed — only rebuilt.
            self.failed = True
            return False
        self.last_admitted_seq = seq
        return True

    def apply_entries(self, entries: list[Entry]) -> None:
        """Replay admitted (or supervisor-drained) entries onto the
        replica. Raising here is loud on purpose: an entry that fails the
        standby's own validation after passing the channel checks means
        real tampering, not transport noise."""
        n_workers = self.db.config.n_workers
        for kind, payload in entries:
            if self._fire("standby.stall_mid_apply"):
                self.failed = True
                self.db.enclave.reboot()
                raise EnclaveUnavailableError(
                    "standby verifier stalled mid-apply; the replica's "
                    "state no longer extends its channel position")
            if kind == "put":
                client = self.db.clients.get(payload.client_id)
                if client is None and self._client_source is not None:
                    client = self._client_source(payload.client_id)
                    if client is not None:
                        self.db.register_client(client)
                if client is None:
                    raise ProtocolError(
                        f"shipped put for unknown client "
                        f"{payload.client_id}")
                self.db.apply_put(client, payload,
                                  worker=payload.key.bits % n_workers)
                self._provisional[payload.key.bits] = payload.payload
                self.applied_entries += 1
            else:
                # Epoch marker: close our own epoch (full set-hash
                # verification over everything applied), advance the
                # sealed floor alongside the primary's, and promote the
                # provisional puts into the committed read view — they
                # are now covered by a completed verification at the
                # primary epoch the marker names.
                self.db.verify()
                self.db.checkpoint()
                self.committed_reads.update(self._provisional)
                self._provisional.clear()
                self.last_marker_epoch = max(self.last_marker_epoch,
                                             int(payload))
                self.applied_epochs += 1
                self.applied_entries += 1

    # ------------------------------------------------------------------
    def read_committed(self, key_bits: int):
        """The payload for ``key_bits`` as of ``last_marker_epoch``, or
        None when the key has no verified-committed value here. This is
        the replica-read surface: never newer than the last completed
        verification, so 'verified-stale' is literal."""
        return self.committed_reads.get(key_bits)

"""The primary-side log shipper: authenticated, resumable batches.

The shipper tails the primary's operation stream — one entry per applied
put plus one marker per closed epoch — and packages it into
:class:`Shipment` batches. Each shipment is:

* **sequence-numbered** — a standby admits shipment *n* only after
  *n-1*, so the host cannot reorder or replay batches;
* **hash-chained** — each shipment names the digest of its predecessor's
  body, so the host cannot truncate or splice the stream;
* **MAC'd in-enclave** — the tag over ``(seq, prev_digest, body_digest)``
  is computed by the primary's enclave under the replication session key
  (``repl_sign``), so the host cannot forge batches at all.

There is ONE chain for the whole replication group: every standby admits
the same shipments under the same session key, which is what makes
quorum votes comparable and lets a promotion loser keep tailing the new
primary without a chain restart (``repl_sign`` signs positions, it does
not consume them, so the winner continues the stream where the deposed
primary left off).

Shipments stay in ``unacked`` until every live standby admits them, then
move to ``history`` — a bounded retained tail that backs *incremental
delta resync*: a rejoining or lagging standby replays only
``pending_for(its next seq)`` instead of taking a fresh snapshot, unless
its position fell below ``floor`` (the tail was garbage-collected).
``drain_entries`` still hands the entire unshipped tail to the
supervisor at promotion — the piece that guarantees no acknowledged
write is lost in a failover.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.core.protocol import PutRequest, _payload_bytes
from repro.crypto.hashing import encode_fields
from repro.instrument import COUNTERS

#: A log entry is ("put", PutRequest) or ("epoch", closed_epoch_number).
Entry = tuple


def _encode_entry(entry: Entry) -> bytes:
    kind, payload = entry
    if kind == "put":
        req: PutRequest = payload
        return encode_fields(
            b"put",
            req.client_id.to_bytes(8, "big"),
            req.key.to_bytes(),
            _payload_bytes(req.payload),
            req.nonce.to_bytes(8, "big"),
            req.tag,
        )
    if kind == "epoch":
        return encode_fields(b"epoch", int(payload).to_bytes(8, "big"))
    raise ValueError(f"unknown log entry kind {kind!r}")


def encode_body(entries: list[Entry]) -> bytes:
    """Canonical wire encoding of a shipment body."""
    return encode_fields(*[_encode_entry(e) for e in entries])


def body_digest(body: bytes) -> bytes:
    return hashlib.sha256(body).digest()


@dataclass
class Shipment:
    """One authenticated batch of log entries in flight to the standbys."""

    seq: int
    entries: list[Entry]
    body: bytes          # canonical encoding (the copy faults corrupt is
                         # the *transit* copy; this one backs retransmits)
    prev_digest: bytes   # hash-chain link to the previous shipment
    tag: bytes           # enclave MAC over (seq, prev_digest, digest(body))

    @property
    def digest(self) -> bytes:
        return body_digest(self.body)


class LogShipper:
    """Packages the primary's op tail into authenticated shipments.

    ``sign_fn(seq, prev_digest, digest) -> tag`` crosses into the primary
    enclave (``repl_sign``); it may raise an AvailabilityError when the
    primary is down — the caller just retries on the next pump, and at
    promotion the unsigned tail is drained instead of shipped.

    ``retain`` bounds the fully-admitted ``history`` kept for delta
    resync; once a shipment ages past it, a standby that far behind must
    take the snapshot path.
    """

    def __init__(self, sign_fn: Callable[[int, bytes, bytes], bytes],
                 retain: int = 64):
        self._sign = sign_fn
        self.retain = retain
        #: Entries not yet packaged into a shipment.
        self.outbox: list[Entry] = []
        #: seq -> shipment packaged but not yet admitted by every live
        #: standby (the group's retransmit window).
        self.unacked: "OrderedDict[int, Shipment]" = OrderedDict()
        #: seq -> shipment admitted by all live standbys, retained (up to
        #: ``retain``) so a lagging/rejoining standby can delta-resync.
        self.history: "OrderedDict[int, Shipment]" = OrderedDict()
        self.next_seq = 0
        self._chain = b"\x00" * 32
        #: An epoch marker is waiting in the outbox (ship promptly so the
        #: standbys can close the epoch and advance their staleness view).
        self.epoch_pending = False
        #: A group-commit batch boundary closed over outbox entries: ship
        #: them as one shipment next pump, so the replication stream
        #: coalesces along the same boundaries the clients observed.
        self.boundary_pending = False

    # ------------------------------------------------------------------
    @property
    def chain(self) -> bytes:
        """The digest the next shipment will chain from."""
        return self._chain

    @property
    def floor(self) -> int:
        """Lowest seq still replayable from retained state. A standby
        whose next needed seq is below this cannot delta-resync."""
        if self.history:
            return next(iter(self.history))
        if self.unacked:
            return next(iter(self.unacked))
        return self.next_seq

    # ------------------------------------------------------------------
    def note_put(self, request: PutRequest) -> None:
        self.outbox.append(("put", request))

    def note_epoch(self, epoch: int) -> None:
        self.outbox.append(("epoch", epoch))
        self.epoch_pending = True

    def note_boundary(self) -> None:
        """The serving loop settled a group-commit batch; everything it
        produced is in the outbox and should travel together."""
        if self.outbox:
            self.boundary_pending = True

    def backlog(self) -> int:
        """Entries acknowledged to clients but not yet admitted by every
        live standby — the observable replication lag."""
        return len(self.outbox) + sum(
            len(s.entries) for s in self.unacked.values())

    def lag_for(self, next_needed: int) -> int:
        """Entries a standby at position ``next_needed`` has not applied
        (retained shipments beyond it, plus the unshipped outbox)."""
        shipped = sum(len(s.entries)
                      for s in self.pending_for(next_needed))
        return shipped + len(self.outbox)

    # ------------------------------------------------------------------
    def make_shipment(self) -> Shipment:
        """Package the whole outbox into one signed shipment.

        The enclave signature may fail with an AvailabilityError; the
        outbox is only consumed after signing succeeds, so a failed
        attempt changes nothing.
        """
        entries = list(self.outbox)
        body = encode_body(entries)
        digest = body_digest(body)
        tag = self._sign(self.next_seq, self._chain, digest)
        shipment = Shipment(self.next_seq, entries, body, self._chain, tag)
        self.unacked[shipment.seq] = shipment
        self.outbox.clear()
        self.epoch_pending = False
        self.boundary_pending = False
        self._chain = digest
        self.next_seq += 1
        COUNTERS.shipped_batches += 1
        return shipment

    def ack(self, seq: int) -> None:
        """Every live standby admitted (and applied) shipment ``seq``:
        retire it from the retransmit window into the retained history,
        garbage-collecting the oldest history past the retain bound."""
        shipment = self.unacked.pop(seq, None)
        if shipment is not None:
            self.history[seq] = shipment
            while len(self.history) > self.retain:
                self.history.popitem(last=False)

    def pending_for(self, next_needed: int) -> list[Shipment]:
        """Every retained shipment at or beyond ``next_needed``, oldest
        first — the delta-resync stream for a standby at that position.

        Only valid when ``next_needed >= floor``; the caller checks the
        floor first and falls back to a snapshot rebuild when the tail
        has been garbage-collected out from under the standby.
        """
        out = [s for s in self.history.values() if s.seq >= next_needed]
        out.extend(s for s in self.unacked.values() if s.seq >= next_needed)
        return out

    def entries_beyond(self, last_admitted: int) -> list[Entry]:
        """Every entry past a standby's last admitted seq, oldest first,
        WITHOUT consuming shipper state. The promotion winner applies
        these; the surviving losers keep tailing the retained stream
        under the new primary, so nothing may be destroyed here."""
        entries: list[Entry] = []
        for shipment in self.history.values():
            if shipment.seq > last_admitted:
                entries.extend(shipment.entries)
        for shipment in self.unacked.values():
            if shipment.seq > last_admitted:
                entries.extend(shipment.entries)
        entries.extend(self.outbox)
        return entries

    def drain_entries(self) -> list[Entry]:
        """Hand over every entry not yet admitted by the group, oldest
        first, clearing the in-flight state. Used when the whole group is
        being torn down/rebuilt: these entries were acknowledged to
        clients, so a successor must apply them before it can serve."""
        entries: list[Entry] = []
        for shipment in self.unacked.values():
            entries.extend(shipment.entries)
        entries.extend(self.outbox)
        self.unacked.clear()
        self.outbox.clear()
        self.epoch_pending = False
        self.boundary_pending = False
        return entries

"""Wires a primary server to its warm standby: shipping and promotion.

The :class:`ReplicationManager` lives host-side (untrusted): it carries
shipments between the two enclaves, which is why nothing here is load-
bearing for integrity — the enclave-side channel checks (``repl_sign`` /
``repl_admit``) and the clients' own receipt MACs are. What the manager
*is* responsible for is availability choreography:

* **pump** — package the outbox into signed shipments and deliver them,
  subject to the ``repl.*`` fault points (drop/reorder/corrupt deliveries
  are rejected by the standby and retransmitted — the host is a
  delay-only adversary on this channel);
* **promote** — the supervisor's failover rung: drain the unshipped tail
  into the standby, close epochs up to the fence, collect per-client
  fence receipts from the standby's enclave, seal a fresh anti-replay
  floor, tear down the deposed enclave, and swap the standby in as the
  server's database under a bumped leadership generation;
* **resync** — after a checkpoint-restore or salvage heal the primary's
  timeline rolled back, so the standby (which applied acknowledged
  writes the restore discarded) is rebuilt from the healed primary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.protocol import ReceiptChannel
from repro.crypto.mac import MacKey
from repro.errors import AvailabilityError, ProtocolError
from repro.instrument import COUNTERS
from repro.obs import TRACER
from repro.replication.shipper import LogShipper
from repro.replication.standby import StandbyVerifier


@dataclass
class ReplicationConfig:
    """Replication tuning knobs."""

    #: Ship when the outbox holds at least this many entries (an epoch
    #: marker or an idle channel ships immediately regardless).
    batch_entries: int = 8
    #: After a promotion, bootstrap a fresh standby from the new primary
    #: so a second failure can fail over too (double-failover support).
    auto_reattach: bool = True


class ReplicationManager:
    """Log shipping + verified failover for one :class:`FastVerServer`."""

    def __init__(self, server, config: ReplicationConfig | None = None,
                 promote_hook=None):
        self.server = server
        self.config = config or ReplicationConfig()
        #: Called with the promoted database's ``items_snapshot()`` right
        #: after a promotion (the chaos oracle rebases on it).
        self.promote_hook = promote_hook
        self.standby: StandbyVerifier | None = None
        self.shipper = LogShipper(self._sign)
        self.failovers = 0
        self.shipped_batches = 0
        self.rejects = 0
        self.lag_max = 0
        self._bootstrap()

    # ------------------------------------------------------------------
    # Pairing
    # ------------------------------------------------------------------
    def _sign(self, seq: int, prev_digest: bytes, digest: bytes) -> bytes:
        return self.server.db._ecall("repl_sign", seq, prev_digest, digest)

    def _client_source(self, client_id: int):
        return self.server.db.clients.get(client_id)

    def _bootstrap(self) -> None:
        """Provision a standby from the current primary's live records and
        install a fresh replication session key on both enclaves."""
        db = self.server.db
        db.flush()
        key = MacKey.generate("repl-channel")
        db._ecall("repl_set_key", key.key_bytes())
        self.standby = StandbyVerifier(
            db.config, db.items_snapshot(), list(db.clients.values()),
            key.key_bytes(), client_source=self._client_source,
            faults_source=lambda: self.server.faults)
        self.shipper = LogShipper(self._sign)

    def _try_bootstrap(self) -> None:
        try:
            self._bootstrap()
        except AvailabilityError:
            # Primary not healthy enough to snapshot right now; serve
            # without a standby (the restore/salvage rungs still work).
            self.standby = None
            self.shipper = LogShipper(self._sign)

    def resync(self) -> None:
        """Rebuild the standby after a restore/salvage heal: the primary's
        timeline rolled back, so the old replica (which applied writes the
        rollback discarded) no longer extends it."""
        self.standby = None
        self._try_bootstrap()

    # ------------------------------------------------------------------
    # Shipping
    # ------------------------------------------------------------------
    def note_put(self, request) -> None:
        self.shipper.note_put(request)

    def note_epoch(self, epoch: int) -> None:
        self.shipper.note_epoch(epoch)

    def note_boundary(self) -> None:
        self.shipper.note_boundary()

    def lag(self) -> int:
        """Acknowledged-but-unreplicated entries (observable lag bound)."""
        return self.shipper.backlog()

    def pump(self) -> None:
        """One shipping round: package and deliver, under fault injection."""
        faults = self.server.faults
        if faults is not None and faults.fire("repl.primary.kill"):
            enclave = self.server.db.enclave
            if enclave.probe()["alive"]:
                enclave.teardown()
        if self.standby is not None and self.standby.failed \
                and self.config.auto_reattach:
            # The replica itself died (a standby.* fault): rebuild it from
            # the live primary. A full resync — the primary's snapshot
            # already reflects every acknowledged put, so the discarded
            # outbox/unacked tail must NOT be replayed onto the fresh
            # replica (it would trip the standby's own anti-replay check).
            self._try_bootstrap()
        if self.standby is not None and not self.standby.failed:
            try:
                self._pump_inner(faults)
            except AvailabilityError:
                pass  # the primary's gate is down; the supervisor acts next
        self._note_lag()

    def _pump_inner(self, faults) -> None:
        sh = self.shipper
        if sh.outbox and (len(sh.outbox) >= self.config.batch_entries
                          or sh.epoch_pending or sh.boundary_pending
                          or not sh.unacked):
            entries = len(sh.outbox)
            sh.make_shipment()
            self.shipped_batches += 1
            TRACER.record("ship", self.server.now, None, entries=entries,
                          unacked=len(sh.unacked))
        if not sh.unacked:
            return
        if faults is not None and faults.fire("repl.standby.lag"):
            return  # the standby's apply loop stalls this round
        if faults is not None and len(sh.unacked) >= 2 \
                and faults.fire("repl.ship.reorder"):
            # Deliver a later shipment first: the standby's sequence check
            # rejects it without touching state, and in-order delivery
            # below proceeds as if nothing happened.
            out_of_order = list(sh.unacked.values())[1]
            self._deliver(out_of_order, corrupt=False)
        for seq in list(sh.unacked):
            shipment = sh.unacked[seq]
            if faults is not None and faults.fire("repl.ship.drop"):
                break  # lost in transit; retransmitted next pump
            corrupt = faults is not None and faults.fire("repl.ship.corrupt")
            if not self._deliver(shipment, corrupt):
                break  # rejected; the canonical copy retransmits next pump
            sh.ack(seq)

    def _deliver(self, shipment, corrupt: bool) -> bool:
        body = shipment.body
        if corrupt and body:
            body = bytes([body[0] ^ 0x01]) + body[1:]
        ok = self.standby.admit(shipment.seq, shipment.prev_digest, body,
                                shipment.tag, shipment.entries)
        if not ok:
            self.rejects += 1
        return ok

    def _note_lag(self) -> None:
        lag = self.shipper.backlog()
        if lag > self.lag_max:
            self.lag_max = lag
        if lag > COUNTERS.replication_lag_max:
            COUNTERS.replication_lag_max = lag

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------
    def can_promote(self) -> bool:
        return self.standby is not None and self.standby.healthy()

    def promote(self) -> int:
        """Promote the standby to primary. Returns the number of drained
        entries (the promotion cost driver).

        Sequence: (1) drain the acknowledged-but-unshipped tail into the
        standby — this is the supervisor-authenticated handoff; the
        primary may be dead, so these entries bypass channel signing, but
        every put still carries its client MAC and is re-validated by the
        standby's enclave; (2) close epochs up to the fence, which runs
        the full set-hash verification over everything replicated; (3)
        collect per-client fence receipts and seal a fresh anti-replay
        floor; (4) tear down the deposed enclave — exactly one live
        verifier identity — and swap the standby in under a new
        leadership generation.
        """
        server = self.server
        standby = self.standby
        if standby is None or not standby.healthy():
            raise ProtocolError("no healthy standby to promote")
        old_db = server.db
        entries = self.shipper.drain_entries()
        standby.apply_entries(entries)
        # The host mirror of the dead primary's epoch can trail its
        # enclave by one (a kill mid-close); +2 clears it with margin.
        fence_target = max(old_db.current_epoch + 2,
                           standby.db.current_epoch + 1)
        standby.db.fence_to(fence_target)
        generation = server.generation + 1
        fences = standby.db._ecall("issue_fence", generation)
        standby.db.receipt_channel = ReceiptChannel()  # unmute
        standby.db.checkpoint()  # seal the floor at the fence
        if old_db.enclave.probe()["alive"]:
            old_db.enclave.teardown()
        items = standby.db.items_snapshot()
        server._adopt_promoted(standby.db, generation, fences, items)
        self.failovers += 1
        COUNTERS.failovers += 1
        TRACER.record("promote", server.now, None, generation=generation,
                      drained=len(entries), fences=len(fences))
        self.standby = None
        self.shipper = LogShipper(self._sign)
        if self.promote_hook is not None:
            self.promote_hook(items)
        if self.config.auto_reattach:
            self._try_bootstrap()
        return len(entries)

"""Wires a primary server to its replication group: shipping, leases,
quorum promotion, delta resync, and verified-stale replica reads.

The :class:`ReplicationManager` lives host-side (untrusted): it carries
shipments between the enclaves, which is why nothing here is load-
bearing for integrity — the enclave-side channel checks (``repl_sign`` /
``repl_admit``), the lease MACs (``repl_grant_lease`` /
``repl_verify_lease``), and the clients' own receipt MACs are. What the
manager *is* responsible for is availability choreography:

* **pump** — package the outbox into signed shipments and fan them out
  to every live standby, subject to the ``repl.*`` fault points
  (drop/reorder/corrupt deliveries are rejected by the standbys and
  retransmitted — the host is a delay-only adversary on this channel);
  plus the periodic work that keeps the group healthy: rebuilding failed
  members, rejoining detached ones, cutting size/time-triggered epoch
  markers, and renewing the leadership lease;
* **promote** — the supervisor's failover rung: collect
  ``(epoch, seq)`` votes from a **quorum** of live standbys, pick the
  member with the highest verified position (ties broken on the lowest
  standby id, deterministically), drain the tail it has not yet admitted,
  fence, seal, and swap it in as the server's database under a bumped
  leadership generation. Surviving losers keep tailing the same hash
  chain under the new primary — ``repl_sign`` signs positions rather
  than consuming them, so the stream continues where the deposed
  primary left off;
* **leases** — the primary serves only under a lease co-signed by a
  quorum of standby enclaves. A standby's enclave refuses to grant a
  generation below the highest it has seen, so once a promotion bumps
  the generation the deposed primary's renewal is starved and its lease
  expiry stops it *before* its first rejected ecall;
* **resync** — a failed or lagging member rejoins by replaying only the
  retained shipped tail from its last admitted seq (*delta resync*),
  falling back to a full snapshot rebuild only when the tail has been
  garbage-collected past its floor (or the member's enclave state is
  gone);
* **replica reads** — tailing standbys serve *verified-stale* reads:
  values covered by a completed set-hash verification at a known primary
  epoch, within an explicit epoch-distance staleness budget that the
  size/time epoch markers keep enforceable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.protocol import ReceiptChannel
from repro.crypto.mac import MacKey
from repro.errors import AvailabilityError, IntegrityError, ProtocolError
from repro.instrument import COUNTERS
from repro.obs import TRACER
from repro.replication.shipper import LogShipper
from repro.replication.standby import StandbyVerifier


@dataclass
class ReplicationConfig:
    """Replication tuning knobs."""

    #: Ship when the outbox holds at least this many entries (an epoch
    #: marker or an idle channel ships immediately regardless).
    batch_entries: int = 8
    #: After a promotion or member failure, restore the group back to
    #: ``n_standbys`` from the live primary (double-failover support).
    auto_reattach: bool = True
    #: Replication group size (number of standbys tailing the primary).
    n_standbys: int = 1
    #: Fully-admitted shipments retained for delta resync; a member
    #: further behind than this takes the snapshot path. This is the
    #: *floor*: the shipper's live retain depth adapts upward to the
    #: deepest member lag observed (plus ``retain_margin``), so a member
    #: that has once fallen N behind keeps a delta path N deep.
    retain_shipments: int = 64
    #: Headroom added above the observed worst member lag when growing
    #: the adaptive retain depth.
    retain_margin: int = 16
    #: Leadership lease length in simulated ticks.
    lease_duration_ticks: float = 240.0
    #: Renew when the remaining lease drops below this fraction of the
    #: duration (an honest primary renews long before expiry).
    lease_renew_margin: float = 0.5
    #: Promotion vote-collection cost per live standby (ticks).
    vote_tick_per_standby: float = 0.2
    #: Fixed resync handshake cost (ticks), both delta and snapshot.
    resync_base_ticks: float = 1.0
    #: Marginal delta-resync cost per redelivered entry (ticks).
    resync_tick_per_entry: float = 0.02
    #: Marginal snapshot-rebuild cost per copied record (ticks) — the
    #: asymmetry that makes delta resync worth having.
    snapshot_tick_per_record: float = 0.05
    #: Cut an epoch marker after this many shipped entries since the
    #: last one (bounds standby verification lag by size)…
    epoch_marker_entries: int = 64
    #: …or after this many ticks with entries pending (bounds it by
    #: time, independent of the maintain cadence).
    epoch_marker_ticks: float = 256.0
    #: Replica reads may be at most this many epochs behind the primary.
    staleness_budget_epochs: int = 2

    @property
    def quorum(self) -> int:
        """Majority of the configured group: ⌈(n_standbys+1)/2⌉."""
        return self.n_standbys // 2 + 1


class ReplicationManager:
    """Log shipping + quorum failover for one :class:`FastVerServer`."""

    def __init__(self, server, config: ReplicationConfig | None = None,
                 promote_hook=None):
        self.server = server
        self.config = config or ReplicationConfig()
        #: Called with the promoted database's ``items_snapshot()`` right
        #: after a promotion (the chaos oracle rebases on it).
        self.promote_hook = promote_hook
        self.standbys: list[StandbyVerifier] = []
        self.shipper = LogShipper(
            self._sign, retain=self.config.retain_shipments)
        self.failovers = 0
        self.shipped_batches = 0
        self.rejects = 0
        self.lag_max = 0
        self.delta_resyncs = 0
        self.snapshot_resyncs = 0
        self.lease_expiries = 0
        self.epoch_markers = 0
        self.replica_reads = 0
        self._key_bytes: bytes | None = None
        #: Whether the *current* primary enclave holds the session key.
        #: Heals wipe it (channel state is deliberately not checkpointed);
        #: regrowing members around a keyless primary would poison the
        #: stream at the first signature, so top-up checks this first.
        self._primary_keyed = False
        self._next_standby_id = 0
        self._needs_top_up = False
        self._lease_expires_at = float("-inf")
        self._lease_alarmed = False
        self._entries_since_marker = 0
        self._last_marker_at = server.now
        self._member_lag_high_water = 0
        self._bootstrap()

    # ------------------------------------------------------------------
    # Group membership
    # ------------------------------------------------------------------
    @property
    def standby(self) -> StandbyVerifier | None:
        """The group's first member (single-standby compatibility view)."""
        return self.standbys[0] if self.standbys else None

    def live_standbys(self) -> list[StandbyVerifier]:
        """Members currently tailing the stream (healthy, not detached)."""
        return [s for s in self.standbys if s.healthy() and not s.detached]

    def _sign(self, seq: int, prev_digest: bytes, digest: bytes) -> bytes:
        return self.server.db._ecall("repl_sign", seq, prev_digest, digest)

    def _client_source(self, client_id: int):
        return self.server.db.clients.get(client_id)

    def _spawn(self) -> StandbyVerifier:
        """One fresh member bootstrapped from the live primary, joining
        the group's single chain at the shipper's current position."""
        db = self.server.db
        sh = self.shipper
        sid = self._next_standby_id
        self._next_standby_id += 1
        member = StandbyVerifier(
            db.config, db.items_snapshot(), list(db.clients.values()),
            self._key_bytes, client_source=self._client_source,
            faults_source=lambda: self.server.faults,
            standby_id=sid, join_seq=sh.next_seq, join_chain=sh.chain,
            as_of_epoch=db.current_epoch)
        # Attest the current leadership generation at join: the grant tag
        # is discarded (this extends no lease), but the member's enclave
        # pins its generation floor, so a deposed primary can never court
        # a freshly spawned member for an old-generation lease grant.
        member.grant_lease(self.server.generation, self.server.now)
        return member

    def _bootstrap(self) -> None:
        """Provision the full group from the current primary's live
        records and install a fresh replication session key on every
        enclave, anchored at the shipper's *current* chain position (zero
        on first bootstrap; wherever the stream stands on a re-anchor)."""
        db = self.server.db
        db.flush()
        key = MacKey.generate("repl-channel")
        self._key_bytes = key.key_bytes()
        sh = self.shipper
        db._ecall("repl_set_key", self._key_bytes, sh.next_seq, sh.chain)
        self._primary_keyed = True
        self.standbys = [self._spawn()
                         for _ in range(self.config.n_standbys)]
        self._lease_expires_at = float("-inf")
        self._lease_alarmed = False

    def _try_bootstrap(self) -> None:
        try:
            self._bootstrap()
        except AvailabilityError:
            # Primary not healthy enough to snapshot right now; serve
            # without a group (the restore/salvage rungs still work).
            self.standbys = []

    def resync(self) -> None:
        """Re-anchor the group against a healed primary.

        A restore/salvage heal rolled the primary's enclave back past the
        volatile replication session (channel state is deliberately not
        checkpointed) and may have rolled its timeline back past writes
        the standbys already applied — the heal replays acknowledged
        writes through the normal serving path, and a member that kept
        its old state would trip its own anti-replay on the re-shipped
        copies. So every member is rebuilt from the healed snapshot.

        What must survive is the shipper's *position*: the in-flight tail
        is discarded (the healed snapshot covers every acknowledged
        write), but the new session is keyed at the shipper's current
        ``(seq, chain)`` and members join there — reconciling the chain
        position with what the standbys had admitted instead of assuming
        a fresh chain at zero, so seq stays monotone across heals and a
        member's last-admitted seq is always comparable with the
        shipper's floor.
        """
        self.shipper.drain_entries()
        self._primary_keyed = False  # the heal wiped the channel session
        self._try_bootstrap()

    def resync_standby(self, index: int) -> None:
        """Rejoin one failed/lagging member.

        Delta path: redeliver only the retained shipments from the
        member's last admitted seq — cost scales with the *gap*, not the
        dataset. Snapshot path (member's enclave state is gone, or its
        position fell below the retained floor): full rebuild — cost
        scales with the record count.
        """
        member = self.standbys[index]
        next_needed = member.last_admitted_seq + 1
        if member.failed or next_needed < self.shipper.floor:
            self._rebuild_standby(index)
            return
        shipments = self.shipper.pending_for(next_needed)
        entries = sum(len(s.entries) for s in shipments)
        for shipment in shipments:
            if not member.admit(shipment.seq, shipment.prev_digest,
                                shipment.body, shipment.tag,
                                shipment.entries):
                self._rebuild_standby(index)
                return
        member.detached = False
        self.delta_resyncs += 1
        COUNTERS.delta_resyncs += 1
        self.server._advance(self.config.resync_base_ticks
                             + entries * self.config.resync_tick_per_entry)
        TRACER.record("resync", self.server.now, None, mode="delta",
                      standby=member.standby_id,
                      shipments=len(shipments), entries=entries)

    def _rebuild_standby(self, index: int) -> None:
        """Snapshot-rebuild one member from the live primary."""
        db = self.server.db
        db.flush()
        sh = self.shipper
        if sh.outbox:
            # Pin the unshipped tail into the stream *before* taking the
            # snapshot: the snapshot includes these entries, so shipping
            # them to the fresh member later would double-apply them and
            # trip its own anti-replay. Packaged now, they sit below the
            # join point and only reach the surviving members.
            sh.make_shipment()
        member = self._spawn()
        self.standbys[index] = member
        records = len(member.committed_reads)
        self.snapshot_resyncs += 1
        COUNTERS.snapshot_resyncs += 1
        self.server._advance(self.config.resync_base_ticks
                             + records * self.config.snapshot_tick_per_record)
        TRACER.record("resync", self.server.now, None, mode="snapshot",
                      standby=member.standby_id, records=records)

    def _top_up(self) -> None:
        """Grow the group back to its configured size from the live
        primary (post-promotion, deferred out of the RTO-critical path)."""
        self._needs_top_up = False
        if not self._primary_keyed:
            # A heal wiped the primary's channel session and the re-anchor
            # bootstrap could not complete (primary was still unhealthy).
            # Members spawned now would tail a primary that cannot sign a
            # single shipment — re-anchor the whole group instead, and on
            # failure stay queued for the next pump.
            self._try_bootstrap()
            if not self._primary_keyed:
                self._needs_top_up = True
            return
        try:
            while len(self.standbys) < self.config.n_standbys:
                db = self.server.db
                db.flush()
                if self.shipper.outbox:
                    self.shipper.make_shipment()
                self.standbys.append(self._spawn())
        except AvailabilityError:
            self._needs_top_up = True

    # ------------------------------------------------------------------
    # Shipping
    # ------------------------------------------------------------------
    def note_put(self, request) -> None:
        self.shipper.note_put(request)
        self._entries_since_marker += 1

    def note_epoch(self, epoch: int) -> None:
        """An epoch closed on the primary (maintain cadence or marker):
        mark it in-stream and reset the marker clocks."""
        self.shipper.note_epoch(epoch)
        self._entries_since_marker = 0
        self._last_marker_at = self.server.now

    def note_boundary(self) -> None:
        self.shipper.note_boundary()

    def lag(self) -> int:
        """Acknowledged-but-unreplicated entries (observable lag bound)."""
        return self.shipper.backlog()

    def maybe_mark_epoch(self) -> None:
        """Cut a size/time-triggered epoch marker.

        The maintain cadence closes epochs on its own schedule; under a
        write burst (or a stalled maintain loop) the shipped stream could
        run arbitrarily far past the last marker, which would make every
        standby's verified position — and therefore the replica-read
        staleness bound — unboundedly stale. Markers close an epoch on
        the primary whenever enough entries or ticks have accumulated,
        so standby verification lag is bounded independently of maintain.
        Durability is not this path's job: no checkpoint is taken here
        (maintain still owns the sealed floor cadence).
        """
        if self.server.degraded:
            return
        cfg = self.config
        due_size = self._entries_since_marker >= cfg.epoch_marker_entries
        due_time = (self._entries_since_marker > 0
                    and self.server.now - self._last_marker_at
                    >= cfg.epoch_marker_ticks)
        if not (due_size or due_time):
            return
        db = self.server.db
        try:
            report = db.verify()
        except AvailabilityError:
            return  # primary gate is down; the supervisor acts next
        self.server._settle_verified(epoch=report.epoch)
        self.epoch_markers += 1
        COUNTERS.epoch_markers += 1
        self.note_epoch(report.epoch)

    def pump(self) -> None:
        """One replication round: kills, repairs, markers, lease upkeep,
        then package-and-deliver under fault injection."""
        faults = self.server.faults
        if faults is not None and faults.fire("repl.primary.kill"):
            enclave = self.server.db.enclave
            if enclave.probe()["alive"]:
                enclave.teardown()
        if faults is not None and faults.fire("repl.standby.kill"):
            # Consulted in the same round as repl.primary.kill (fixed
            # order, one draw each per pump), so specs pinned to the same
            # encounter index model a *correlated* same-tick kill.
            victim = next((s for s in self.standbys if s.healthy()), None)
            if victim is not None:
                victim.db.enclave.reboot()
                victim.failed = True
        if self.config.auto_reattach:
            if self._needs_top_up:
                self._top_up()
            for i, member in enumerate(self.standbys):
                if member.failed or member.detached:
                    try:
                        self.resync_standby(i)
                    except AvailabilityError:
                        break  # primary down; the supervisor acts next
        self.maybe_mark_epoch()
        self.lease_ok()
        if self.live_standbys():
            try:
                self._pump_inner(faults)
            except AvailabilityError:
                pass  # the primary's gate is down; the supervisor acts next
        self._detach_laggards()
        self._note_lag()

    def _pump_inner(self, faults) -> None:
        sh = self.shipper
        live = self.live_standbys()
        if sh.outbox and (len(sh.outbox) >= self.config.batch_entries
                          or sh.epoch_pending or sh.boundary_pending
                          or not sh.unacked):
            entries = len(sh.outbox)
            sh.make_shipment()
            self.shipped_batches += 1
            TRACER.record("ship", self.server.now, None, entries=entries,
                          unacked=len(sh.unacked))
        if not sh.unacked:
            return
        if faults is not None and faults.fire("repl.standby.lag"):
            return  # the standbys' apply loops stall this round
        if faults is not None and len(sh.unacked) >= 2 \
                and faults.fire("repl.ship.reorder"):
            # Deliver a later shipment first: the standby's sequence check
            # rejects it without touching state, and in-order delivery
            # below proceeds as if nothing happened.
            out_of_order = list(sh.unacked.values())[1]
            self._deliver(live[0], out_of_order, corrupt=False)
        for seq in list(sh.unacked):
            shipment = sh.unacked[seq]
            if faults is not None and faults.fire("repl.ship.drop"):
                break  # lost in transit; retransmitted next pump
            corrupt = faults is not None and faults.fire("repl.ship.corrupt")
            for member in live:
                if member.failed or member.detached:
                    continue
                if member.last_admitted_seq + 1 != seq:
                    continue  # behind (resync path) or already has it
                self._deliver(member, shipment, corrupt)
            survivors = [s for s in live
                         if not s.failed and not s.detached]
            if survivors and all(s.last_admitted_seq >= seq
                                 for s in survivors):
                sh.ack(seq)

    def _deliver(self, member: StandbyVerifier, shipment,
                 corrupt: bool) -> bool:
        body = shipment.body
        if corrupt and body:
            body = bytes([body[0] ^ 0x01]) + body[1:]
        ok = member.admit(shipment.seq, shipment.prev_digest, body,
                          shipment.tag, shipment.entries)
        if not ok:
            self.rejects += 1
        return ok

    def _detach_laggards(self) -> None:
        """Bound the retransmit window: when one member pins ``unacked``
        open past the retain bound while the rest advance, detach it —
        it stops receiving deliveries and rejoins later via
        :meth:`resync_standby` (delta if the tail still covers it)."""
        sh = self.shipper
        live = self.live_standbys()
        while len(sh.unacked) > sh.retain and len(live) > 1:
            slowest = min(live,
                          key=lambda s: (s.last_admitted_seq, s.standby_id))
            slowest.detached = True
            live.remove(slowest)
            TRACER.record("resync", self.server.now, None, mode="detach",
                          standby=slowest.standby_id,
                          behind=sh.next_seq - 1 - slowest.last_admitted_seq)
            for seq in list(sh.unacked):
                if all(s.last_admitted_seq >= seq for s in live):
                    sh.ack(seq)

    def _note_lag(self) -> None:
        lag = self.shipper.backlog()
        if lag > self.lag_max:
            self.lag_max = lag
        if lag > COUNTERS.replication_lag_max:
            COUNTERS.replication_lag_max = lag
        self._adapt_retain()

    def _adapt_retain(self) -> None:
        """Size the retained tail to the group's *observed* behavior: a
        static retain either wastes memory (group never lags) or forces
        snapshot rebuilds (group lags deeper than the constant). Track
        the worst per-member shipment lag ever seen and keep the window
        that much deeper than the configured floor, plus margin, so the
        next stall of the same depth still resolves via delta resync."""
        sh = self.shipper
        live = self.live_standbys()
        if live:
            worst = max(sh.next_seq - 1 - m.last_admitted_seq for m in live)
            if worst > self._member_lag_high_water:
                self._member_lag_high_water = worst
        if self._member_lag_high_water <= 0:
            # A group that has never lagged keeps the configured window —
            # the margin buys headroom over *observed* behavior, not a
            # blanket raise of the floor.
            depth = self.config.retain_shipments
        else:
            depth = max(self.config.retain_shipments,
                        self._member_lag_high_water + self.config.retain_margin)
        sh.retain = depth
        if depth > COUNTERS.replication_retain_depth:
            COUNTERS.replication_retain_depth = depth

    # ------------------------------------------------------------------
    # Repair source (repro.scrub)
    # ------------------------------------------------------------------
    def repair_payload(self, key_bits: int) -> tuple[bool, bytes | None]:
        """An authentic repair candidate for one data key, or
        ``(False, None)``.

        Freshest live member's verified-committed view first (ordered by
        last marker epoch, ties to the lowest id — deterministic), then
        the shipper's retained tail, newest put first. The group is a
        candidate *source*, never a trust root: the scrubber re-vets
        whatever this returns through the primary's enclave, so a lying
        member here is detected, not believed.
        """
        live = sorted(self.live_standbys(),
                      key=lambda s: (-s.last_marker_epoch, s.standby_id))
        for member in live:
            if key_bits in member.committed_reads:
                return True, member.committed_reads[key_bits]
        for kind, item in reversed(self.shipper.entries_beyond(0)):
            if kind == "put" and item.key.bits == key_bits:
                return True, item.payload
        return False, None

    # ------------------------------------------------------------------
    # Leases
    # ------------------------------------------------------------------
    def lease_ok(self) -> bool:
        """Is the primary's leadership lease valid (renewing if due)?

        With no live members the lease discipline has nothing to bind
        against — an empty group is indistinguishable from replication
        being disabled — so the primary serves unleased (the degenerate
        single-node mode; the restore/salvage rungs still protect it).

        Detached (lagging) members still vote: a lease grant attests the
        leadership *generation*, which a laggard's enclave knows just as
        well as a current one — excluding laggards would let replication
        lag bleed into an availability outage.
        """
        voters = [s for s in self.standbys if s.healthy()]
        if not voters:
            return True
        now = self.server.now
        duration = self.config.lease_duration_ticks
        if (self._lease_expires_at - now
                <= duration * self.config.lease_renew_margin):
            self._renew_lease(voters)
        ok = now < self._lease_expires_at
        if ok:
            self._lease_alarmed = False
        elif not self._lease_alarmed:
            self._lease_alarmed = True
            self.lease_expiries += 1
            COUNTERS.lease_expiries += 1
            TRACER.record("lease", now, None, event="expired",
                          generation=self.server.generation)
        return ok

    def lease_valid(self) -> bool:
        """Passive lease check for the health surface: valid now, without
        attempting a renewal (no ecalls, no counter side effects)."""
        if not any(s.healthy() for s in self.standbys):
            return True
        return self.server.now < self._lease_expires_at

    def _renew_lease(self, live: list[StandbyVerifier]) -> None:
        """Collect lease grants from the live members; the lease extends
        only when a quorum of the *configured* group co-signs it (so a
        partitioned minority can never keep a deposed primary alive)."""
        server = self.server
        generation = server.generation
        expires_at = server.now + self.config.lease_duration_ticks
        faults = server.faults
        grants = 0
        for member in live:
            if faults is not None and faults.fire("repl.lease.partition"):
                continue  # this grant never arrives
            try:
                tag = member.grant_lease(generation, expires_at)
                server.db._ecall("repl_verify_lease", generation,
                                 expires_at, tag)
            except IntegrityError:
                # Refused (the member saw a higher generation — we are
                # deposed) or forged in transit; either way, no grant.
                continue
            except AvailabilityError:
                continue
            grants += 1
        if grants >= self.config.quorum:
            self._lease_expires_at = expires_at
            TRACER.record("lease", server.now, None, event="renewed",
                          generation=generation, grants=grants,
                          expires_at=expires_at)

    # ------------------------------------------------------------------
    # Replica reads
    # ------------------------------------------------------------------
    def replica_read(self, key_bits: int):
        """Serve a verified-stale read from the freshest live member.

        Returns ``(payload, as_of_epoch, stale_epochs)`` when a member
        holds a verified-committed value within the staleness budget, or
        None (caller falls through to the primary). ``as_of_epoch`` is
        the primary epoch of the member's last verified marker — the
        read is literally 'the value as verified at that epoch'.
        """
        live = self.live_standbys()
        if not live:
            return None
        best = max(live,
                   key=lambda s: (s.last_marker_epoch, -s.standby_id))
        stale = max(0, self.server.db.current_epoch - best.last_marker_epoch)
        if stale > self.config.staleness_budget_epochs:
            return None
        payload = best.read_committed(key_bits)
        if payload is None:
            return None
        self.replica_reads += 1
        COUNTERS.replica_reads += 1
        if stale > COUNTERS.replica_staleness_max:
            COUNTERS.replica_staleness_max = stale
        TRACER.record("replica", self.server.now, None,
                      standby=best.standby_id,
                      as_of=best.last_marker_epoch, stale_epochs=stale)
        return (payload, best.last_marker_epoch, stale)

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------
    def can_promote(self) -> bool:
        """Promotion needs a quorum of healthy members to vote."""
        healthy = [s for s in self.standbys if s.healthy()]
        return len(healthy) >= self.config.quorum

    def promote(self) -> int:
        """Quorum-promote the best standby to primary. Returns the number
        of tail entries the winner had to apply (the promotion cost
        driver).

        Sequence: (1) collect ``(epoch, seq)`` votes from every healthy
        member — the quorum rule guarantees the group as a whole has
        seen everything any member admitted, and the max vote picks the
        member whose verified position is furthest ahead (ties broken on
        the lowest standby id, deterministically); (2) the winner applies
        the tail it has not yet admitted — read *non-destructively* from
        the shipper, because the surviving losers still need those same
        shipments; every put still carries its client MAC and is
        re-validated by the winner's enclave; (3) close epochs up to the
        fence, collect per-client fence receipts, seal a fresh
        anti-replay floor; (4) tear down the deposed enclave — exactly
        one live verifier identity — and swap the winner in under a new
        leadership generation; (5) the losers keep tailing the same
        chain (the winner signs from where the stream stands), the lease
        is re-acquired at the new generation — which bumps every loser
        enclave's generation floor and thereby starves the deposed
        primary's renewals — and the group tops back up to size on the
        next pump, off the RTO-critical path.
        """
        server = self.server
        healthy = [s for s in self.standbys if s.healthy()]
        if len(healthy) < self.config.quorum:
            raise ProtocolError(
                f"quorum unavailable: {len(healthy)} healthy standby(s), "
                f"promotion needs {self.config.quorum}")
        server._advance(len(healthy) * self.config.vote_tick_per_standby)
        winner = max(healthy,
                     key=lambda s: (s.vote(), -s.standby_id))
        TRACER.record("quorum", server.now, None,
                      votes={s.standby_id: list(s.vote()) for s in healthy},
                      winner=winner.standby_id, quorum=self.config.quorum)
        old_db = server.db
        entries = self.shipper.entries_beyond(winner.last_admitted_seq)
        winner.apply_entries(entries)
        # The host mirror of the dead primary's epoch can trail its
        # enclave by one (a kill mid-close); +2 clears it with margin.
        fence_target = max(old_db.current_epoch + 2,
                           winner.db.current_epoch + 1)
        winner.db.fence_to(fence_target)
        generation = server.generation + 1
        fences = winner.db._ecall("issue_fence", generation)
        winner.db.receipt_channel = ReceiptChannel()  # unmute
        winner.db.checkpoint()  # seal the floor at the fence
        if old_db.enclave.probe()["alive"]:
            old_db.enclave.teardown()
        items = winner.db.items_snapshot()
        server._adopt_promoted(winner.db, generation, fences, items)
        # The winner's enclave provably holds the session key (it admitted
        # shipments under it), so the new primary can sign immediately.
        self._primary_keyed = True
        self.standbys.remove(winner)
        self.failovers += 1
        COUNTERS.failovers += 1
        TRACER.record("promote", server.now, None, generation=generation,
                      drained=len(entries), fences=len(fences),
                      survivors=len(self.standbys))
        # Realign the survivors: an in-stream marker at the new primary's
        # (fenced-forward) epoch keeps their verified positions — and the
        # staleness bound — comparable with the new timeline.
        self.note_epoch(server.db.current_epoch)
        if self.config.auto_reattach \
                and len(self.standbys) < self.config.n_standbys:
            self._needs_top_up = True
            if len(self.live_standbys()) < self.config.quorum:
                # Too few live members to co-sign the new leader's lease
                # (or, for the single-standby group, to tail the stream
                # at all): healing back to a leaseable quorum is
                # RTO-critical, so this much top-up runs synchronously;
                # the rest waits for the next pump.
                self._top_up()
        self._lease_expires_at = float("-inf")
        self._lease_alarmed = False
        self.lease_ok()  # re-acquire at the new generation now: this is
        # what bumps the survivors' generation floor and deposes the old
        # primary's lease for good.
        if self.promote_hook is not None:
            self.promote_hook(items)
        return len(entries)

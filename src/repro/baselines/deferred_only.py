"""Pure deferred memory verification: the DV / Concerto baseline (§5, §8.5).

No Merkle tree at all: every record is always protected by the epoch
write-set hash, every operation is an add/validate/evict triple against a
verifier thread, and verification is a full scan — every record in the
database migrates through a verifier cache, which is why verification
latency is linear in the database size (the limitation §5.4 calls out and
the hybrid scheme fixes).

Multi-threaded operation uses the paper's §5.3 improvements directly: one
verifier thread per worker, per-thread clocks with the Lamport rule, and
set hashes aggregated at epoch close.
"""

from __future__ import annotations

from repro.core.epochs import EpochController
from repro.core.hostmirror import VerifierMirror
from repro.core.keys import BitKey
from repro.core.log import VerificationLog
from repro.core.protocol import Client, ClientTable, EpochReceipt, OpReceipt
from repro.core.records import DataValue, entry_fields
from repro.core.verifier import VerifierThread
from repro.crypto.mac import MacKey
from repro.crypto.multiset import aggregate
from repro.crypto.prf import Prf
from repro.enclave.costmodel import SIMULATED, EnclaveCostProfile
from repro.enclave.enclave import SimulatedEnclave
from repro.enclave.sealed import SealedSlot
from repro.errors import EpochError, ProtocolError, SetHashMismatchError
from repro.instrument import COUNTERS


class DeferredProgram:
    """The enclave-resident verifier for pure deferred verification."""

    def __init__(self, sealed: SealedSlot, n_threads: int,
                 cache_capacity: int, combiner: str):
        self.sealed = sealed
        self.prf = Prf.generate()
        self.epochs = EpochController()
        self.clients = ClientTable()
        self._combiner = combiner
        self.threads = [
            VerifierThread(i, self.prf, self.epochs,
                           cache_capacity=cache_capacity, combiner=combiner)
            for i in range(n_threads)
        ]

    def register_client(self, client_id: int, key_bytes: bytes) -> None:
        self.clients.register(client_id, MacKey(key_bytes,
                                                name=f"client-{client_id}"))

    def seed(self, records: list[tuple[BitKey, bytes]]) -> None:
        """Trusted bulk load: write-set entries for the initial database.

        Mirrors Blum et al.'s initialization, where the checker writes
        every address once before the run; each record starts at
        timestamp 0 in epoch 0.
        """
        thread = self.threads[0]
        ws = thread._set_hash(thread._write_sets, 0)
        for key, payload in records:
            ws.insert_entry(*entry_fields(key, DataValue(payload), 0, 0))

    def process_batch(self, verifier_id: int, entries) -> list:
        thread = self.threads[verifier_id]
        results = []
        for method, args in entries:
            if method in ("add_deferred", "evict_deferred"):
                results.append(getattr(thread, method)(*args))
            elif method == "validate_get":
                results.append(self._validate(thread, "get", *args))
            elif method == "validate_put_update":
                results.append(self._validate(thread, "put", *args))
            else:
                raise ProtocolError(f"unknown DV entry {method!r}")
        return results

    def _validate(self, thread: VerifierThread, kind: str, client_id: int,
                  key: BitKey, *rest) -> OpReceipt:
        from repro.core.protocol import GET, PUT
        if kind == "get":
            (nonce,) = rest
            self.clients.check_nonce(client_id, nonce)
            value = thread.read(key)
            receipt = OpReceipt(client_id, GET, key, value.payload, nonce,
                                self.epochs.current, b"")
        else:
            payload, nonce, tag = rest
            ckey = self.clients.key_for(client_id)
            from repro.core.protocol import _payload_bytes
            ckey.verify(tag, PUT, key.to_bytes(), _payload_bytes(payload),
                        nonce.to_bytes(8, "big"))
            self.clients.check_nonce(client_id, nonce)
            thread.update(key, DataValue(payload))
            receipt = OpReceipt(client_id, PUT, key, payload, nonce,
                                self.epochs.current, b"")
        receipt.tag = self.clients.key_for(client_id).sign(*receipt.mac_fields())
        return receipt

    def start_epoch_close(self) -> int:
        closing = self.epochs.current
        self.epochs.advance()
        return closing

    def finish_epoch_close(self, epoch: int) -> dict[int, EpochReceipt]:
        if epoch >= self.epochs.current:
            raise EpochError(f"epoch {epoch} is still open")
        reads, writes = [], []
        for thread in self.threads:
            r, w = thread.take_epoch_hashes(epoch)
            reads.append(r)
            writes.append(w)
        COUNTERS.epoch_verifications += 1
        if aggregate(reads, self._combiner) != aggregate(writes, self._combiner):
            raise SetHashMismatchError(
                f"epoch {epoch}: deferred verification failed"
            )
        self.epochs.mark_verified(epoch)
        receipts = {}
        for client_id in self.clients.nonces():
            receipt = EpochReceipt(epoch, b"")
            receipt.tag = self.clients.key_for(client_id).sign(
                *receipt.mac_fields())
            receipts[client_id] = receipt
        return receipts

    def trusted_memory_bytes(self) -> int:
        return sum(t.trusted_memory_bytes() for t in self.threads) + 1024


class DeferredStore:
    """Host driver for the DV baseline (array-backed, §8.5).

    ``shared_verifier=True`` models Concerto's design point (§5.3): one
    verifier clock and one log that *all* host threads serialize into.
    FastVer's per-thread verifiers remove exactly this bottleneck; the
    Concerto-comparison benchmark contrasts the two.
    """

    def __init__(self, items: list[tuple[int, bytes]], key_width: int = 64,
                 n_workers: int = 1, cache_capacity: int = 64,
                 log_capacity: int = 256, combiner: str = "add",
                 shared_verifier: bool = False,
                 enclave_profile: EnclaveCostProfile = SIMULATED):
        self.key_width = key_width
        self.shared_verifier = shared_verifier
        n_verifiers = 1 if shared_verifier else n_workers
        self.enclave = SimulatedEnclave(
            lambda sealed: DeferredProgram(sealed, n_verifiers,
                                           cache_capacity, combiner),
            profile=enclave_profile,
        )
        self.logs = [VerificationLog(self.enclave, 0 if shared_verifier else i,
                                     log_capacity)
                     for i in range(n_verifiers)]
        self.mirrors = [VerifierMirror(i, cache_capacity)
                        for i in range(n_verifiers)]
        self.clients: dict[int, Client] = {}
        self.current_epoch = 0
        # The untrusted array: key -> (payload, timestamp, epoch).
        self.records: dict[BitKey, tuple[bytes, int, int]] = {}
        pairs = [(BitKey.data_key(k, key_width), p) for k, p in items]
        self.enclave.ecall("seed", pairs)
        for key, payload in pairs:
            self.records[key] = (payload, 0, 0)

    def register_client(self, client: Client) -> None:
        self.enclave.ecall("register_client", client.client_id,
                           client.key.key_bytes())
        self.clients[client.client_id] = client

    def data_key(self, key: int) -> BitKey:
        return BitKey.data_key(key, self.key_width)

    # ------------------------------------------------------------------
    def _triple(self, worker: int, key: BitKey, new_payload: bytes | None,
                validate_entry: tuple) -> None:
        """The §7 worker inner loop: add, validate, evict, store update."""
        if self.shared_verifier:
            worker = 0  # Concerto: everything funnels through one verifier
        COUNTERS.store_reads += 1
        payload, ts, epoch = self.records[key]
        mirror = self.mirrors[worker]
        mirror.observe_add(ts)
        ts_new = mirror.predict_evict()
        log = self.logs[worker]
        log.append("add_deferred", key, DataValue(payload), ts, epoch)
        log.append(*validate_entry)
        log.append("evict_deferred", key)
        stored = payload if new_payload is None else new_payload
        COUNTERS.store_writes += 1
        COUNTERS.cas_attempts += 1
        self.records[key] = (stored, ts_new, self.current_epoch)

    def get(self, client: Client, key: int, worker: int = 0) -> bytes | None:
        bk = self.data_key(key)
        if bk not in self.records:
            return None
        nonce = client.next_nonce()
        self._triple(worker, bk, None,
                     ("validate_get", client.client_id, bk, nonce))
        COUNTERS.ops += 1
        return self.records[bk][0]

    def put(self, client: Client, key: int, payload: bytes,
            worker: int = 0) -> None:
        bk = self.data_key(key)
        if bk not in self.records:
            raise ProtocolError("DV baseline supports updates of loaded keys")
        request = client.make_put(bk, payload)
        self._triple(worker, bk, payload,
                     ("validate_put_update", client.client_id, bk, payload,
                      request.nonce, request.tag))
        COUNTERS.ops += 1

    # ------------------------------------------------------------------
    def verify(self) -> int:
        """Full verification scan: migrate *every* record (§5.4's linear
        cost). Returns the closed epoch."""
        self._flush_all()
        closing = self.enclave.ecall("start_epoch_close")
        self.current_epoch += 1
        for worker, (key, (payload, ts, epoch)) in enumerate(
                sorted(self.records.items())):
            if epoch > closing:
                continue
            vid = worker % len(self.logs)
            mirror = self.mirrors[vid]
            mirror.observe_add(ts)
            ts_new = mirror.predict_evict()
            log = self.logs[vid]
            log.append("add_deferred", key, DataValue(payload), ts, epoch)
            log.append("evict_deferred", key)
            self.records[key] = (payload, ts_new, self.current_epoch)
            COUNTERS.scan_records += 1
        self._flush_all()
        receipts = self.enclave.ecall("finish_epoch_close", closing)
        for client_id, receipt in receipts.items():
            client = self.clients.get(client_id)
            if client is not None:
                client.accept_epoch(receipt)
        return closing

    def _flush_all(self) -> None:
        for log in self.logs:
            for result in log.drain():
                if isinstance(result, OpReceipt):
                    client = self.clients.get(result.client_id)
                    if client is not None:
                        client.accept(result)

    flush = _flush_all

"""Merkle-only verified stores: the M / M1K / M32K / MV baselines (§8.5).

These drive the *record-encoded sparse Merkle tree* with verifier caching
(§4.3) but **without** any deferred verification — every operation's
integrity comes from an unbroken hash chain to the pinned root, so results
are final immediately (no provisional receipts, performance goal P3), but
every cold access pays a logarithmic chain of hash checks (P2 missed) and
every chain shares the upper tree levels (P4 missed).

Variants, matching Fig 14b:

* ``cache_capacity`` small (just the working chain) → plain **M**;
* 1K / 32K entries → **M1K** / **M32K** (LRU retains hot merkle records,
  lazy hash updates per §4.3.1);
* ``eager_propagation=True`` → **MV**: every put pushes hash updates along
  the whole cached path to the root, modelling VeritasDB's caching [29].

Records live in a plain dict "array", as §8.5 prescribes ("by storing the
records in an array, not FASTER, we remove any effect of FASTER code").
"""

from __future__ import annotations

from repro.core.hostmirror import (
    VIA_MERKLE,
    VIA_PINNED,
    VerifierMirror,
    host_value_hash,
)
from repro.core.keys import BitKey
from repro.core.log import VerificationLog
from repro.core.multiverifier import VerifierGroup
from repro.core.protocol import Client, OpReceipt
from repro.core.records import DataValue, MerkleValue, Value
from repro.enclave.costmodel import SIMULATED, EnclaveCostProfile
from repro.enclave.enclave import SimulatedEnclave
from repro.errors import ProtocolError
from repro.instrument import COUNTERS
from repro.merkle.sparse import FOUND, lookup


class CachedMerkleStore:
    """A verified KV store protected purely by the cached sparse Merkle tree."""

    def __init__(self, items: list[tuple[int, bytes]], key_width: int = 64,
                 cache_capacity: int = 1024, retain_cache: bool = True,
                 eager_propagation: bool = False, log_capacity: int = 64,
                 enclave_profile: EnclaveCostProfile = SIMULATED):
        if cache_capacity < key_width + 8:
            raise ValueError("cache too small for a root-to-leaf chain")
        self.key_width = key_width
        self.retain_cache = retain_cache
        self.eager_propagation = eager_propagation
        self.enclave = SimulatedEnclave(
            lambda sealed: VerifierGroup(sealed, n_threads=1,
                                         cache_capacity=cache_capacity),
            profile=enclave_profile,
        )
        self.log = VerificationLog(self.enclave, 0, log_capacity)
        self.mirror = VerifierMirror(0, cache_capacity)
        self.records: dict[BitKey, Value] = {}   # the untrusted "array"
        self.clients: dict[int, Client] = {}
        pairs = [(BitKey.data_key(k, key_width), p) for k, p in items]
        root_value, records = self.enclave.ecall("bulk_load", pairs)
        for key, value in records:
            self.records[key] = value
        root = BitKey.root()
        self.mirror.add(root, root_value, VIA_PINNED, None)

    # ------------------------------------------------------------------
    def register_client(self, client: Client) -> None:
        self.enclave.ecall("register_client", client.client_id,
                           client.key.key_bytes())
        self.clients[client.client_id] = client

    def data_key(self, key: int) -> BitKey:
        return BitKey.data_key(key, self.key_width)

    def _host_value(self, key: BitKey) -> Value | None:
        entry = self.mirror.entries.get(key)
        if entry is not None:
            return entry.value
        COUNTERS.store_reads += 1
        return self.records.get(key)

    # ------------------------------------------------------------------
    # Cache plumbing (merkle-only: everything chains from the root)
    # ------------------------------------------------------------------
    def _make_room(self, need: int, locked: set[BitKey]) -> None:
        while self.mirror.free < need:
            victim = self.mirror.victims(locked, 1)[0]
            self._evict(victim.key)

    def _evict(self, key: BitKey) -> None:
        entry = self.mirror.entries[key]
        parent_key = entry.parent_key
        self.mirror.remove(key)
        self.log.append("evict_merkle", key, parent_key)
        COUNTERS.store_writes += 1
        self.records[key] = entry.value
        parent = self.mirror.entries[parent_key]
        side = key.direction_from(parent_key)
        ptr = parent.value.pointer(side)
        parent.value = parent.value.with_pointer(
            side, ptr.with_hash(host_value_hash(entry.value)))

    def _cache_chain(self, path: list[BitKey], locked: set[BitKey]) -> None:
        for i, node in enumerate(path):
            if node in self.mirror:
                self.mirror.touch(node)
                continue
            value = self.records[node]
            self._make_room(1, locked)
            self.log.append("add_merkle", node, value, path[i - 1])
            self.mirror.add(node, value, VIA_MERKLE, path[i - 1])
            COUNTERS.cache_misses += 1

    def _teardown(self, path: list[BitKey], leaf: BitKey | None) -> None:
        """Plain-M mode: evict the whole working chain after each op."""
        if leaf is not None and leaf in self.mirror:
            self._evict(leaf)
        for node in reversed(path):
            if node.is_root:
                continue
            entry = self.mirror.entries.get(node)
            if entry is not None and entry.children_cached == 0:
                self._evict(node)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def get(self, client: Client, key: int, worker: int = 0) -> bytes | None:
        bk = self.data_key(key)
        nonce = client.next_nonce()
        result = lookup(self._host_value, bk)
        locked = set(result.path) | {bk}
        self._cache_chain(result.path, locked)
        if result.kind == FOUND:
            if bk not in self.mirror:
                value = self.records[bk]
                self._make_room(1, locked)
                self.log.append("add_merkle", bk, value, result.terminal)
                self.mirror.add(bk, value, VIA_MERKLE, result.terminal)
            else:
                self.mirror.touch(bk)
            self.log.append("validate_get", client.client_id, bk, nonce)
            payload = self.mirror.entries[bk].value.payload
        else:
            self.log.append("validate_get_absent", client.client_id, bk,
                            result.terminal, nonce)
            payload = None
        if not self.retain_cache:
            self._teardown(result.path, bk if result.kind == FOUND else None)
        self._finish_op()
        return payload

    def put(self, client: Client, key: int, payload: bytes,
            worker: int = 0) -> None:
        bk = self.data_key(key)
        request = client.make_put(bk, payload)
        result = lookup(self._host_value, bk)
        if result.kind != FOUND:
            raise ProtocolError(
                "merkle-only baseline supports updates of loaded keys only"
            )
        locked = set(result.path) | {bk}
        self._cache_chain(result.path, locked)
        if bk not in self.mirror:
            value = self.records[bk]
            self._make_room(1, locked)
            self.log.append("add_merkle", bk, value, result.terminal)
            self.mirror.add(bk, value, VIA_MERKLE, result.terminal)
        self.log.append("validate_put_update", client.client_id, bk, payload,
                        request.nonce, request.tag)
        self.mirror.entries[bk].value = DataValue(payload)
        if self.eager_propagation:
            # MV: refresh every hash from the leaf to the root, per put.
            chain = [bk] + list(reversed(result.path))
            for child, parent in zip(chain, chain[1:]):
                self.log.append("refresh_hash", child, parent)
                p_entry = self.mirror.entries[parent]
                side = child.direction_from(parent)
                ptr = p_entry.value.pointer(side)
                p_entry.value = p_entry.value.with_pointer(
                    side, ptr.with_hash(
                        host_value_hash(self.mirror.entries[child].value)))
        if not self.retain_cache:
            self._teardown(result.path, bk)
        self._finish_op()

    def _finish_op(self) -> None:
        COUNTERS.ops += 1

    def flush(self) -> None:
        """Flush the verification log, delivering receipts to clients."""
        for result in self.log.drain():
            if isinstance(result, OpReceipt):
                client = self.clients.get(result.client_id)
                if client is not None:
                    client.accept(result)


def plain_merkle_store(items, key_width: int = 64, **kwargs) -> CachedMerkleStore:
    """The "M" variant: no retained cache; every op pays the full chain."""
    return CachedMerkleStore(items, key_width=key_width,
                             cache_capacity=key_width + 8,
                             retain_cache=False, **kwargs)

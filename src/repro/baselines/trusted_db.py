"""The trusted-database strawman of §3: run everything inside the enclave.

The whole key-value store lives in trusted memory; the untrusted host
merely relays requests. Integrity is trivial (the mirrored state *is* the
database), latency is zero, concurrency is whatever the enclave gives you
— but the design fails performance goal P1: enclave memory is a couple
hundred megabytes, so a database of any real size simply does not fit.
:class:`TrustedDbStore` reproduces both the behaviour and the failure mode
(loading past the profile's memory bound raises
:class:`~repro.errors.CapacityError`).
"""

from __future__ import annotations

from repro.core.keys import BitKey
from repro.core.protocol import GET, PUT, Client, ClientTable, OpReceipt, _payload_bytes
from repro.crypto.mac import MacKey
from repro.enclave.costmodel import SGX, EnclaveCostProfile
from repro.enclave.enclave import SimulatedEnclave
from repro.enclave.sealed import SealedSlot
from repro.instrument import COUNTERS

#: Modelled bytes of enclave memory per record (key + value + dict slots).
BYTES_PER_RECORD = 120


class TrustedDbProgram:
    """Enclave-resident: the entire database plus client validation."""

    def __init__(self, sealed: SealedSlot):
        self.sealed = sealed
        self.clients = ClientTable()
        self._data: dict[BitKey, bytes] = {}

    def register_client(self, client_id: int, key_bytes: bytes) -> None:
        self.clients.register(client_id, MacKey(key_bytes,
                                                name=f"client-{client_id}"))

    def load(self, items: list[tuple[BitKey, bytes]]) -> None:
        for key, payload in items:
            self._data[key] = payload

    def get(self, client_id: int, key: BitKey, nonce: int) -> OpReceipt:
        self.clients.check_nonce(client_id, nonce)
        payload = self._data.get(key)
        receipt = OpReceipt(client_id, GET, key, payload, nonce, 0, b"")
        receipt.tag = self.clients.key_for(client_id).sign(*receipt.mac_fields())
        return receipt

    def put(self, client_id: int, key: BitKey, payload: bytes, nonce: int,
            tag: bytes) -> OpReceipt:
        ckey = self.clients.key_for(client_id)
        ckey.verify(tag, PUT, key.to_bytes(), _payload_bytes(payload),
                    nonce.to_bytes(8, "big"))
        self.clients.check_nonce(client_id, nonce)
        self._data[key] = payload
        receipt = OpReceipt(client_id, PUT, key, payload, nonce, 0, b"")
        receipt.tag = ckey.sign(*receipt.mac_fields())
        return receipt

    def trusted_memory_bytes(self) -> int:
        return len(self._data) * BYTES_PER_RECORD + 4096


class TrustedDbStore:
    """Host relay for the trusted-database approach."""

    def __init__(self, items: list[tuple[int, bytes]], key_width: int = 64,
                 enclave_profile: EnclaveCostProfile = SGX):
        self.key_width = key_width
        self.enclave = SimulatedEnclave(TrustedDbProgram,
                                        profile=enclave_profile)
        pairs = [(BitKey.data_key(k, key_width), p) for k, p in items]
        self.enclave.ecall("load", pairs)  # raises CapacityError if too big
        self.clients: dict[int, Client] = {}

    def register_client(self, client: Client) -> None:
        self.enclave.ecall("register_client", client.client_id,
                           client.key.key_bytes())
        self.clients[client.client_id] = client

    def data_key(self, key: int) -> BitKey:
        return BitKey.data_key(key, self.key_width)

    def get(self, client: Client, key: int, worker: int = 0) -> bytes | None:
        nonce = client.next_nonce()
        receipt = self.enclave.ecall("get", client.client_id,
                                     self.data_key(key), nonce)
        client.accept(receipt)
        COUNTERS.ops += 1
        return receipt.payload

    def put(self, client: Client, key: int, payload: bytes,
            worker: int = 0) -> None:
        bk = self.data_key(key)
        request = client.make_put(bk, payload)
        receipt = self.enclave.ecall("put", client.client_id, bk, payload,
                                     request.nonce, request.tag)
        client.accept(receipt)
        COUNTERS.ops += 1

    def flush(self) -> None:
        """No buffering: every op is already validated synchronously."""

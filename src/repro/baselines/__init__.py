"""Baseline integrity systems the paper compares against (§3, §8.5)."""

from repro.baselines.deferred_only import DeferredProgram, DeferredStore
from repro.baselines.merkle_only import CachedMerkleStore, plain_merkle_store
from repro.baselines.trusted_db import TrustedDbProgram, TrustedDbStore

__all__ = [
    "DeferredProgram",
    "DeferredStore",
    "CachedMerkleStore",
    "plain_merkle_store",
    "TrustedDbProgram",
    "TrustedDbStore",
]

"""Jittered exponential backoff, shared by every retry loop in the repo.

One policy class serves three callers with very different stakes:

* :meth:`FastVer._ecall` — absorbing transient enclave call-gate failures
  (the gate failed *before* dispatch, so a retry is always safe);
* the serving layer's supervisor — pacing recovery attempts so a wedged
  verifier is not hammered;
* the client SDK (:mod:`repro.client`) — retrying transient
  :class:`~repro.errors.AvailabilityError`\\ s against the server.

The policy follows the standard "exponential backoff with full jitter"
construction (delay drawn uniformly from ``[0, min(cap, base * mult^n)]``)
because full jitter de-synchronizes retry storms from many clients — the
property the ROADMAP's millions-of-users target actually needs.

Everything is deterministic: the jitter RNG is seeded per policy instance,
and "sleeping" is a pluggable callback (the default merely accumulates the
total simulated delay, so tests and chaos runs never touch the wall
clock). The same seed therefore produces the same delay schedule,
bit-for-bit — which keeps chaos soaks replayable even when they retry.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterator


@dataclass
class BackoffPolicy:
    """A bounded, seeded, full-jitter exponential backoff schedule.

    ``max_attempts`` is the *total* attempt budget (first try included).
    Delays are in abstract time units ("ticks" in the serving layer's
    simulated clock); the first attempt always has delay 0.
    """

    max_attempts: int = 4
    base_delay: float = 1.0
    max_delay: float = 64.0
    multiplier: float = 2.0
    #: "full" draws uniform(0, d); "none" uses the raw exponential delay
    #: (useful when a test needs exact delay values).
    jitter: str = "full"
    seed: int = 0
    #: Called with each non-zero delay; replace to couple the backoff to a
    #: simulated clock. The default just accumulates ``total_delay``.
    sleep_fn: Callable[[float], None] | None = None
    #: Simulated time spent sleeping across this policy's lifetime.
    total_delay: float = field(default=0.0, init=False, repr=False)
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays cannot be negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.jitter not in ("full", "none"):
            raise ValueError(f"unknown jitter mode {self.jitter!r}")
        self._rng = random.Random(f"backoff:{self.seed}")

    # ------------------------------------------------------------------
    def delays(self) -> Iterator[float]:
        """Yield one delay per attempt: 0 first, then jittered exponentials."""
        for attempt in range(self.max_attempts):
            if attempt == 0:
                yield 0.0
                continue
            raw = min(self.max_delay,
                      self.base_delay * self.multiplier ** (attempt - 1))
            yield self._rng.uniform(0.0, raw) if self.jitter == "full" else raw

    def sleep(self, delay: float) -> None:
        """Spend ``delay`` time units (simulated unless ``sleep_fn`` says
        otherwise)."""
        if delay <= 0:
            return
        self.total_delay += delay
        if self.sleep_fn is not None:
            self.sleep_fn(delay)

    def run(self, fn: Callable[[], object], *,
            retry_on: tuple[type[BaseException], ...],
            no_retry: tuple[type[BaseException], ...] = (),
            on_retry: Callable[[BaseException], None] | None = None):
        """Call ``fn`` under the policy: retry on ``retry_on`` exceptions,
        re-raising immediately for ``no_retry`` subtypes (checked first)
        and re-raising the last error once the budget is spent."""
        last: BaseException | None = None
        for delay in self.delays():
            self.sleep(delay)
            try:
                return fn()
            except no_retry:
                raise
            except retry_on as exc:
                last = exc
                if on_retry is not None:
                    on_retry(exc)
        assert last is not None
        raise last

"""A4 — Ablation (§6.1 vs §7): when should data records stay cached?

§6.1 puts the hottest records in the verifier cache, where checking is
elided; yet §7's worker loop adds/validates/evicts every operation. This
ablation shows both are right, in their own regime:

* **hot set fits** (small DB vs cache): retention turns almost every op
  into a crypto-free cache hit — the §6.1 tier pays off;
* **hot set exceeds the cache** (large DB): retained data records evict
  the Merkle *chain* records the cold path needs, causing chain thrash —
  per-op crypto goes *up*, vindicating §7's per-op evict choice.

The crossover is the interesting output; both regimes are asserted.
"""

from __future__ import annotations

from repro import FastVer, FastVerConfig, new_client
from repro.bench.harness import BenchRow, scaled
from repro.instrument import COUNTERS
from repro.sim.metrics import MetricsBuilder
from repro.workloads.ycsb import YCSB_A, YcsbGenerator

OPS = 8_000
N_WORKERS = 4
CACHE = 512  # per verifier => 2048 slots total

SMALL_PAPER = 1_600_000    # scaled: fits entirely in the caches
LARGE_PAPER = 16_000_000   # scaled: hot set far exceeds the caches


def run_mode(paper_records: int, hot: bool) -> tuple[BenchRow, float]:
    COUNTERS.reset()
    records = scaled(paper_records)
    db = FastVer(
        FastVerConfig(key_width=64, n_workers=N_WORKERS, partition_depth=4,
                      cache_capacity=CACHE, cache_hot_records=hot),
        items=[(k, k.to_bytes(8, "big")) for k in range(records)],
    )
    client = new_client(1)
    db.register_client(client)
    generator = YcsbGenerator(YCSB_A, records, theta=0.9, seed=6)
    builder = MetricsBuilder(N_WORKERS, paper_records)
    before = COUNTERS.snapshot()
    for i, (kind, key, arg) in enumerate(generator.operations(OPS)):
        if kind == "get":
            db.get(client, key, worker=i % N_WORKERS)
        else:
            db.put(client, key, arg, worker=i % N_WORKERS)
    db.flush()
    delta = COUNTERS.snapshot().diff(before)
    builder.add_ops(delta, OPS)
    v_before = COUNTERS.snapshot()
    db.verify()
    db.flush()
    builder.add_verification(COUNTERS.snapshot().diff(v_before))
    metrics = builder.build()
    crypto_per_op = (delta.multiset_updates + delta.merkle_hashes) / OPS
    size = f"{paper_records // 1_000_000}M"
    label = (f"{size}, retained (§6.1 tier 1)" if hot
             else f"{size}, per-op evict (§7 loop)")
    return BenchRow(label, metrics.throughput_mops,
                    metrics.verification_latency_s,
                    {"crypto_ops/op": f"{crypto_per_op:.2f}"}), crypto_per_op


def run_ablation():
    results = {}
    for paper in (SMALL_PAPER, LARGE_PAPER):
        results[paper] = (run_mode(paper, False), run_mode(paper, True))
    return results


def test_ablation_hot_caching(benchmark, show):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = [row for pair in results.values() for (row, _) in pair]
    show("A4: hot-record retention vs per-op evict (YCSB-A, zipf 0.9)", rows)
    (small_off, small_off_c), (small_on, small_on_c) = results[SMALL_PAPER]
    (large_off, large_off_c), (large_on, large_on_c) = results[LARGE_PAPER]
    # Regime 1: hot set fits — retention slashes per-op crypto and does
    # not hurt throughput.
    assert small_on_c < 0.5 * small_off_c
    assert small_on.throughput_mops > 0.9 * small_off.throughput_mops
    # Regime 2: hot set exceeds the cache — retention thrashes the chain
    # records and per-op crypto goes up (the §7 loop wins here).
    assert large_on_c > large_off_c

"""E5 — Figure 13d: FASTER baseline vs FastVer, read-only (YCSB-C).

Same three bars as Fig 13c but for a 100%-read workload. The paper's
observation: FastVer's relative cost looks the same as for 50/50,
because deferred verification turns every read into a read-modify-write
(the timestamp must advance), so reads are not meaningfully cheaper.
"""

from __future__ import annotations

from benchmarks.bench_fig13c_faster_5050 import check_shape, run_comparison
from repro.instrument import COUNTERS
from repro.workloads.ycsb import YCSB_C


def test_fig13d_faster_comparison_readonly(benchmark, show):
    results = benchmark.pedantic(lambda: run_comparison(YCSB_C),
                                 rounds=1, iterations=1)
    show("Fig 13d: FASTER vs FastVer, YCSB-C read-only",
         [row for group in results for row in group])
    check_shape(results)


def test_reads_are_read_modify_writes(benchmark, show):
    """§8.1's explanation: a validated read still CASes the timestamp."""
    from repro.bench.harness import scaled, sweep_fastver

    def run():
        COUNTERS.reset()
        records = scaled(8_000_000)
        sweep_fastver(YCSB_C, records, 8_000_000, n_workers=4,
                      batch_sizes=[2_000])
        return COUNTERS.snapshot()

    counters = benchmark.pedantic(run, rounds=1, iterations=1)
    # Every warm read performs a store CAS even though it changes no data.
    assert counters.cas_attempts >= 1_000

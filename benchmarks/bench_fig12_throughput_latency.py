"""E1 — Figures 8–12: FastVer throughput vs verification latency.

The paper's headline frontier: for each database size (2M / 8M / 32M /
128M records), sweep the batch size (operations between verification
scans) and plot (verification latency, throughput). Expected shape:
larger batches → higher throughput *and* higher latency; bigger
databases push the frontier toward higher latency at equal throughput;
every size can reach low latency by shrinking the batch (goal P3).

Workload: YCSB-A (50/50), zipfian θ=0.9. The database loads once per
size; each sweep point measures exactly one epoch (batch + verification).
"""

from __future__ import annotations

from repro.bench.harness import BenchRow, scaled, sweep_fastver
from repro.workloads.ycsb import YCSB_A

PAPER_SIZES = [2_000_000, 8_000_000, 32_000_000, 128_000_000]
#: Batch sizes as a fraction of the (scaled) database size.
BATCH_FRACTIONS = [0.05, 0.2, 0.8, 3.2]
BATCH_CAP = 24_000
N_WORKERS = 8
DEPTH = 5


def run_frontier() -> list[list[BenchRow]]:
    series: list[list[BenchRow]] = []
    for paper in PAPER_SIZES:
        records = scaled(paper)
        batches = sorted({min(BATCH_CAP, max(200, int(records * f)))
                          for f in BATCH_FRACTIONS})
        results = sweep_fastver(YCSB_A, records, paper,
                                n_workers=N_WORKERS, batch_sizes=batches,
                                partition_depth=DEPTH)
        series.append([
            BenchRow(
                f"{paper // 1_000_000}M records, batch {batch}",
                result.throughput_mops,
                result.verification_latency_s,
                {"deferred": result.deferred_population},
            )
            for batch, result in results
        ])
    return series


def test_fig12_throughput_latency(benchmark, show):
    series = benchmark.pedantic(run_frontier, rounds=1, iterations=1)
    rows = [row for s in series for row in s]
    show("Fig 8-12: FastVer throughput vs verification latency (YCSB-A, "
         "zipf 0.9)", rows)
    # Shape: within each size, bigger batches trade latency for throughput.
    for s in series:
        assert s[-1].throughput_mops > s[0].throughput_mops
        assert s[-1].latency_s > s[0].latency_s
    # Larger databases pay more verification latency at the largest batch
    # (the Fig 8 vs Fig 11 contrast).
    assert series[-1][-1].latency_s > series[0][-1].latency_s

"""A3 — Ablation (§6.2, §8.1): the Merkle partition depth d.

Depth d keeps ~2^d Merkle records permanently in deferred state. Larger
d: more parallelizable Merkle work and shorter cold chains, but every
verification must migrate more anchors (higher verification latency
floor). Smaller d: cheap verifications, but Merkle work concentrates on
few subtrees. This is FastVer's second latency knob (§8.1's "depth d").
"""

from __future__ import annotations

from repro.bench.harness import BenchRow, scaled, sweep_fastver
from repro.workloads.ycsb import YCSB_A

PAPER_SIZE = 32_000_000
DEPTHS = [1, 3, 5, 7, 9]
N_WORKERS = 8


def run_depths():
    records = scaled(PAPER_SIZE)
    batch = min(10_000, records)
    rows = []
    for depth in DEPTHS:
        [(_, result)] = sweep_fastver(
            YCSB_A, records, PAPER_SIZE, n_workers=N_WORKERS,
            batch_sizes=[batch], partition_depth=depth)
        rows.append(BenchRow(
            f"partition depth d={depth} (~{2 ** depth} anchors)",
            result.throughput_mops, result.verification_latency_s, {}))
    return rows


def test_ablation_partition_depth(benchmark, show):
    rows = benchmark.pedantic(run_depths, rounds=1, iterations=1)
    show("A3: partition depth sweep (YCSB-A, 32M records)", rows)
    throughputs = [r.throughput_mops for r in rows]
    # Deeper partitioning helps throughput up to a point...
    assert max(throughputs[1:]) >= throughputs[0]
    # ...and all configurations stay within sane bounds (no collapse).
    assert min(throughputs) > 0.2 * max(throughputs)

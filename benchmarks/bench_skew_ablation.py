"""E9 — §8.1 (text): impact of key skew.

The paper: "the throughput of FastVer at skew θ=0.9 is about 30% higher
than at θ=0" — skew concentrates accesses on warm (deferred) records, so
fewer operations pay cold Merkle chains and each verification migrates a
smaller touched set.
"""

from __future__ import annotations

from repro.bench.harness import BenchRow, scaled, sweep_fastver
from repro.workloads.ycsb import YCSB_A

PAPER_SIZE = 32_000_000
N_WORKERS = 8


def run_skews():
    records = scaled(PAPER_SIZE)
    batch = min(16_000, records)
    rows = []
    for theta, label in ((0.0, "uniform (θ=0)"), (0.9, "zipfian θ=0.9")):
        distribution = "uniform" if theta == 0.0 else "zipfian"
        [(_, result)] = sweep_fastver(
            YCSB_A, records, PAPER_SIZE, n_workers=N_WORKERS,
            batch_sizes=[batch], distribution=distribution, theta=theta)
        rows.append(BenchRow(label, result.throughput_mops,
                             result.verification_latency_s,
                             {"deferred": result.deferred_population}))
    return rows


def test_skew_ablation(benchmark, show):
    rows = benchmark.pedantic(run_skews, rounds=1, iterations=1)
    show("§8.1: skew ablation (YCSB-A, 32M records)", rows)
    uniform, zipf = rows
    # Skew helps: ≥15% higher throughput (paper: ~30%).
    assert zipf.throughput_mops > 1.15 * uniform.throughput_mops

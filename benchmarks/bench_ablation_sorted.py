"""A2 — Ablation (§6.3): sorted vs unsorted Merkle update application.

At each verification FastVer applies the epoch's touched records back to
Merkle protection. Sorting the keys first "manufactures" locality of
reference: consecutive keys share ancestor records, so each Merkle node
is cached once and hashed once per batch. We count verifier hashes per
migrated record with sorting on vs off.
"""

from __future__ import annotations

import random

from repro import FastVer, FastVerConfig, new_client
from repro.bench.harness import BenchRow
from repro.instrument import COUNTERS

RECORDS = 20_000
TOUCH = 3_000


def hashes_per_migration(sorted_updates: bool) -> float:
    COUNTERS.reset()
    db = FastVer(
        FastVerConfig(key_width=64, n_workers=2, partition_depth=4,
                      cache_capacity=256,
                      sorted_merkle_updates=sorted_updates),
        items=[(k, b"v") for k in range(RECORDS)],
    )
    client = new_client(1)
    db.register_client(client)
    rng = random.Random(7)
    touched = rng.sample(range(RECORDS), TOUCH)
    for i, k in enumerate(touched):
        db.put(client, k, b"u", worker=i % 2)
    db.flush()
    before = COUNTERS.merkle_hashes
    report = db.verify()
    db.flush()
    return (COUNTERS.merkle_hashes - before) / max(1, report.migrated_data)


def run_ablation():
    unsorted = hashes_per_migration(False)
    sorted_ = hashes_per_migration(True)
    return [
        BenchRow("sorted application (§6.3)", 0.0, 0.0,
                 {"verifier_hashes/record": f"{sorted_:.2f}"}),
        BenchRow("unsorted application", 0.0, 0.0,
                 {"verifier_hashes/record": f"{unsorted:.2f}"}),
    ], sorted_, unsorted


def test_ablation_sorted_updates(benchmark, show):
    rows, sorted_, unsorted = benchmark.pedantic(run_ablation, rounds=1,
                                                 iterations=1)
    show("A2: sorted vs unsorted Merkle re-application at verification",
         rows)
    # Sorting must cut hash work substantially (paper: an order of
    # magnitude difference between sorted and random application).
    assert sorted_ < 0.7 * unsorted

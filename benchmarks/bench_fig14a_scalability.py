"""E6 — Figure 14a: FastVer throughput vs worker-thread count.

YCSB-A (50% reads) at several database sizes, workers 2/4/8/16. Paper
shape: near-linear scaling with worker count at every size (verification
work — deferred migration and partitioned Merkle updates — parallelizes
across all threads), with absolute throughput decreasing in database
size.
"""

from __future__ import annotations

from repro.bench.harness import BenchRow, scaled, sweep_fastver
from repro.workloads.ycsb import YCSB_A

PAPER_SIZES = [2_000_000, 8_000_000, 32_000_000]
WORKER_COUNTS = [2, 4, 8, 16]


def run_scaling():
    out = {}
    for paper in PAPER_SIZES:
        records = scaled(paper)
        batch = min(12_000, max(1_000, records))
        series = []
        for workers in WORKER_COUNTS:
            [(_, result)] = sweep_fastver(
                YCSB_A, records, paper, n_workers=workers,
                batch_sizes=[batch], partition_depth=5)
            series.append(BenchRow(
                f"{paper // 1_000_000}M records, {workers} workers",
                result.throughput_mops, result.verification_latency_s, {}))
        out[paper] = series
    return out


def test_fig14a_scalability(benchmark, show):
    results = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    show("Fig 14a: throughput vs worker threads (YCSB-A, zipf 0.9)",
         [row for series in results.values() for row in series])
    for series in results.values():
        # Monotone scaling with workers...
        throughputs = [row.throughput_mops for row in series]
        assert all(b > a for a, b in zip(throughputs, throughputs[1:]))
        # ...and a healthy speedup from 2 to 16 workers (paper: ~1.75x per
        # doubling → ~5.3x over three doublings).
        assert throughputs[-1] / throughputs[0] > 3.0

"""E3 — Figure 13b: real SGX enclaves vs simulated enclaves.

YCSB-A with uniform keys, 8 workers, DB sizes 8M–64M. The paper measured
real-SGX throughput at ~90% of the simulated-enclave build, attributing
the gap to EPC memory overheads the simulation does not model. We run
the identical workload under both cost profiles; the SGX profile carries
the measured crossing cost and in-enclave compute multiplier.
"""

from __future__ import annotations

from repro.bench.harness import BenchRow, scaled, sweep_fastver
from repro.enclave.costmodel import SGX, SIMULATED
from repro.workloads.ycsb import YCSB_A

PAPER_SIZES = [8_000_000, 16_000_000, 32_000_000, 64_000_000]
N_WORKERS = 8


def run_comparison() -> list[tuple[BenchRow, BenchRow, float]]:
    out = []
    for paper in PAPER_SIZES:
        records = scaled(paper)
        batch = max(500, records // 2)
        rows = {}
        for profile in (SIMULATED, SGX):
            [(_, result)] = sweep_fastver(
                YCSB_A, records, paper, n_workers=N_WORKERS,
                batch_sizes=[batch], distribution="uniform",
                profile=profile)
            rows[profile.name] = BenchRow(
                f"{paper // 1_000_000}M records, {profile.name}",
                result.throughput_mops, result.verification_latency_s, {})
        ratio = (rows["sgx"].throughput_mops
                 / rows["simulated"].throughput_mops)
        out.append((rows["simulated"], rows["sgx"], ratio))
    return out


def test_fig13b_sgx_vs_simulated(benchmark, show):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    rows = []
    for sim_row, sgx_row, ratio in results:
        sgx_row.extra["sgx/simulated"] = f"{ratio:.2f}"
        rows.extend([sim_row, sgx_row])
    show("Fig 13b: SGX vs simulated enclaves (YCSB-A uniform, 8 workers)",
         rows)
    # Shape: SGX lands at ~90% of simulated across all sizes (paper: "about
    # 90% ... and this trend remains true in other settings").
    for _, _, ratio in results:
        assert 0.75 < ratio < 1.0

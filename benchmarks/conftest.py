"""Shared infrastructure for the figure-reproduction benchmarks.

Each benchmark runs its experiment once under pytest-benchmark's timer
(`pedantic(rounds=1)`) — the interesting output is the printed table of
simulated throughput/latency numbers, which reproduce the corresponding
paper figure's series. Run with::

    pytest benchmarks/ --benchmark-only

Scale is controlled by REPRO_SCALE (default 400; FULL_SCALE=1 for paper
sizes — hours of wall time).
"""

from __future__ import annotations

import pytest


@pytest.fixture
def show(capsys):
    """Print through pytest's capture so tables appear in the run log."""
    def _show(title, rows):
        from repro.bench.harness import print_table
        with capsys.disabled():
            print_table(title, rows)
    return _show

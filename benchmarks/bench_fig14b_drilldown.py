"""E7 — Figure 14b: single-threaded micro drill-down.

Array-backed stores (no FASTER effects), YCSB-A-style 50/50 random ops,
one verifier thread, DB of 64M records (scaled). Bars, as in the paper:

* M        — plain sparse Merkle, no retained verifier cache
* M1K      — Merkle with a 1K-entry verifier cache
* M32K     — Merkle with a 32K-entry cache
* MV       — 32K cache but eager root propagation (VeritasDB-style)
* M1K(seq) — 1K cache, sequential key order
* DV       — pure deferred verification

Expected shape (log scale in the paper): all random Merkle variants
cluster ~100K ops/s; sequential access buys ~an order of magnitude;
DV sits another order above that. The secondary axis — fraction of time
in the verifier — falls as caching grows.
"""

from __future__ import annotations

from repro.bench.harness import BenchRow, op_count, run_baseline, scaled
from repro.workloads.ycsb import YCSB_A

PAPER_SIZE = 64_000_000
#: The drill-down compares *fixed* cache sizes (1K, 32K) against the
#: database, so the database must stay large relative to them; floor the
#: scaled size at 640K records (paper ratio / 100).
MIN_RECORDS = 640_000


def run_drilldown() -> dict[str, BenchRow]:
    records = scaled(PAPER_SIZE, minimum=MIN_RECORDS)
    ops = min(6_000, op_count(records))
    rows: dict[str, BenchRow] = {}

    def fraction(result):
        return f"{result.metrics.verifier_fraction:.2f}"

    for kind in ("M", "M1K", "M32K", "MV"):
        result = run_baseline(kind, YCSB_A, records, PAPER_SIZE, ops=ops)
        rows[kind] = BenchRow(kind, result.throughput_mops, 0.0,
                              {"verifier_frac": fraction(result)})
    result = run_baseline("M1K", YCSB_A, records, PAPER_SIZE, ops=ops,
                          distribution="sequential")
    rows["M1K(seq)"] = BenchRow("M1K (seq)", result.throughput_mops, 0.0,
                                {"verifier_frac": fraction(result)})
    # DV's bar amortizes verification over a much larger batch (as the
    # paper's micro setup does); its scan latency is reported separately
    # by the Fig 12 family and §5.4 tests.
    result = run_baseline("DV", YCSB_A, records, PAPER_SIZE, ops=ops,
                          final_verify=False)
    rows["DV"] = BenchRow("DV", result.throughput_mops, 0.0,
                          {"verifier_frac": fraction(result)})
    return rows


def test_fig14b_drilldown(benchmark, show):
    rows = benchmark.pedantic(run_drilldown, rounds=1, iterations=1)
    show("Fig 14b: single-threaded micro drill-down (64M records)",
         list(rows.values()))
    t = {k: r.throughput_mops for k, r in rows.items()}
    # The paper's ordering on the log-scale chart:
    # random merkle variants cluster together...
    assert t["M"] <= t["M1K"] * 3 and t["M1K"] <= t["M32K"] * 3
    # ...MV is the slowest cached variant (eager propagation)...
    assert t["MV"] <= t["M32K"]
    # ...sequential buys a large factor over random...
    assert t["M1K(seq)"] > 3 * t["M1K"]
    # ...and DV sits an order of magnitude above the Merkle cluster.
    assert t["DV"] > 8 * t["M32K"]
    # The verifier's share of total time falls as the scheme leans less on
    # Merkle hashing (the paper's secondary axis); the effect is strongest
    # for DV, which does no Merkle hashing at all.
    frac = {k: float(r.extra["verifier_frac"]) for k, r in rows.items()}
    assert frac["M32K"] <= frac["M"] + 0.02
    assert frac["DV"] < frac["M"] - 0.05

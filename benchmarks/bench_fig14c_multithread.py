"""E8 — Figure 14c: multithreaded micro throughput, small vs large DB.

Pure deferred verification over an array (the §8.5 setup: batch large
enough that essentially all records are deferred), uniform random keys,
workers 1..16, two database sizes: 16K records (fits in L3) and 64M
records (DRAM-resident, scaled). Paper shape: ~75% scaling per worker
doubling for both sizes, with a constant throughput gap reflecting
L3-vs-DRAM access costs.
"""

from __future__ import annotations

from repro.bench.harness import BenchRow, run_baseline, scaled
from repro.workloads.ycsb import YCSB_A

SMALL_PAPER = 16_000          # fits in L3 at paper scale: not scaled down
LARGE_PAPER = 64_000_000
WORKERS = [1, 2, 4, 8, 16]


def run_multithreaded():
    out: dict[int, list[BenchRow]] = {}
    for paper, records in ((SMALL_PAPER, 16_000),
                           (LARGE_PAPER, scaled(LARGE_PAPER))):
        series = []
        for workers in WORKERS:
            result = run_baseline(
                "DV", YCSB_A, records, paper, n_workers=workers,
                distribution="uniform", ops=6_000, final_verify=False)
            series.append(BenchRow(
                f"{paper} records, {workers} workers",
                result.throughput_mops, 0.0, {}))
        out[paper] = series
    return out


def test_fig14c_multithreaded_micro(benchmark, show):
    results = benchmark.pedantic(run_multithreaded, rounds=1, iterations=1)
    show("Fig 14c: multithreaded deferred-verification micro (uniform)",
         [row for series in results.values() for row in series])
    for series in results.values():
        throughputs = [row.throughput_mops for row in series]
        # Monotone scaling, roughly 1.75x per doubling (allow slack).
        assert all(b > 1.3 * a for a, b in zip(throughputs, throughputs[1:]))
    # The L3-resident database is consistently faster at equal workers.
    small = results[SMALL_PAPER]
    large = results[LARGE_PAPER]
    for s_row, l_row in zip(small, large):
        assert s_row.throughput_mops > 1.2 * l_row.throughput_mops

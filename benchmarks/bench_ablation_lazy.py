"""A1 — Ablation (§4.3.1): lazy vs eager hash propagation.

Counts the verifier hash computations per put for (a) lazy updates —
only the immediate parent is touched at evict, FastVer's choice — vs
(b) VeritasDB-style eager propagation to the root on every put. Under a
retained cache, lazy turns repeated updates into O(1) hash work.
"""

from __future__ import annotations

from repro import new_client
from repro.baselines.merkle_only import CachedMerkleStore
from repro.bench.harness import BenchRow
from repro.instrument import COUNTERS

RECORDS = 20_000
PUTS = 1_500


def hashes_per_put(eager: bool) -> float:
    COUNTERS.reset()
    items = [(k, b"v") for k in range(RECORDS)]
    db = CachedMerkleStore(items, key_width=64, cache_capacity=4096,
                           eager_propagation=eager)
    client = new_client(1)
    db.register_client(client)
    # Warm a small working set, then hammer it with puts.
    hot = list(range(64))
    for k in hot:
        db.get(client, k)
    db.flush()
    before = COUNTERS.merkle_hashes
    for i in range(PUTS):
        db.put(client, hot[i % len(hot)], b"u%d" % i)
    db.flush()
    return (COUNTERS.merkle_hashes - before) / PUTS


def run_ablation():
    lazy = hashes_per_put(eager=False)
    eager = hashes_per_put(eager=True)
    return [
        BenchRow("lazy updates (FastVer, §4.3.1)", 0.0, 0.0,
                 {"verifier_hashes/put": f"{lazy:.2f}"}),
        BenchRow("eager propagation (VeritasDB-style)", 0.0, 0.0,
                 {"verifier_hashes/put": f"{eager:.2f}"}),
    ], lazy, eager


def test_ablation_lazy_updates(benchmark, show):
    rows, lazy, eager = benchmark.pedantic(run_ablation, rounds=1,
                                           iterations=1)
    show("A1: lazy vs eager hash propagation (hash computations per put)",
         rows)
    # Lazy with a warm cache does (near-)zero hashing per put; eager pays
    # the full path every time.
    assert lazy < 1.0
    assert eager > 5 * max(lazy, 0.1)

"""E4 — Figure 13c: FASTER baseline vs FastVer, 50% reads.

For each database size, three bars: unmodified FASTER (no integrity),
FastVer at its best throughput (large batch, unconstrained latency), and
FastVer constrained to sub-second verification latency. Paper shape:
FastVer is within ~2x of FASTER when 10s-of-seconds latencies are
tolerable; the sub-second constraint costs little at small sizes and up
to ~10x at 128M records.
"""

from __future__ import annotations

from repro.bench.harness import (
    BenchRow,
    run_faster_baseline,
    scaled,
    sweep_fastver,
)
from repro.workloads.ycsb import YCSB_A

PAPER_SIZES = [2_000_000, 8_000_000, 32_000_000, 128_000_000]
N_WORKERS = 8
#: Modeled latency bound for the constrained bar (scaled along with the
#: database: the paper's 1 s at full scale corresponds to ~1/scale here
#: since the migrated population scales down too).
LATENCY_BOUND_S = 0.005


def run_comparison(spec=YCSB_A):
    out = []
    for paper in PAPER_SIZES:
        records = scaled(paper)
        faster = run_faster_baseline(spec, records, paper,
                                     n_workers=N_WORKERS,
                                     ops=min(24_000, records * 2))
        batches = sorted({max(200, records // 20), max(400, records // 4),
                          min(24_000, records * 2)})
        sweep = sweep_fastver(spec, records, paper, n_workers=N_WORKERS,
                              batch_sizes=batches)
        best = max(sweep, key=lambda br: br[1].throughput_mops)[1]
        bounded = [r for _, r in sweep
                   if r.verification_latency_s <= LATENCY_BOUND_S]
        constrained = (max(bounded, key=lambda r: r.throughput_mops)
                       if bounded else min(sweep, key=lambda br:
                                           br[1].verification_latency_s)[1])
        label = f"{paper // 1_000_000}M"
        out.append((
            BenchRow(f"{label} FASTER (no integrity)",
                     faster.throughput_mops, 0.0, {}),
            BenchRow(f"{label} FastVer (best)",
                     best.throughput_mops, best.verification_latency_s, {}),
            BenchRow(f"{label} FastVer (latency-bounded)",
                     constrained.throughput_mops,
                     constrained.verification_latency_s, {}),
        ))
    return out


def check_shape(results):
    for i, (faster, best, constrained) in enumerate(results):
        # FASTER always wins. FastVer's gap grows with database size at
        # our scale because the benchmark's ops-to-DB ratio is ~200x below
        # the paper's 4-billion-op runs (see EXPERIMENTS.md): the smaller
        # the ratio, the larger the cold fraction per epoch. At the
        # smallest size (highest ratio) the gap approaches the paper's
        # ~2x; we assert a widening but bounded band.
        assert faster.throughput_mops > best.throughput_mops
        bound = 6 if i == 0 else 60
        assert best.throughput_mops > faster.throughput_mops / bound
        # The latency bound only ever costs throughput.
        assert constrained.throughput_mops <= best.throughput_mops + 1e-9
    # The price of the latency bound grows with database size.
    first_gap = results[0][1].throughput_mops / results[0][2].throughput_mops
    last_gap = results[-1][1].throughput_mops / results[-1][2].throughput_mops
    assert last_gap >= first_gap * 0.8


def test_fig13c_faster_comparison_5050(benchmark, show):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    show("Fig 13c: FASTER vs FastVer, YCSB-A 50% reads",
         [row for group in results for row in group])
    check_shape(results)

"""§1 / §5.3 — FastVer's per-thread verifiers vs Concerto's single clock.

The paper: Concerto's best throughput is ~3M ops/s with verification
latencies of 10s of seconds at 10M records, because a single verifier
clock and a single serialized log cap concurrency ("the maximum rate of
lock-free operations on a single data element is an upper bound"). FastVer
is "an order of magnitude better than Concerto both in terms of throughput
and latency" thanks to minimally-interacting per-thread verifiers.

We run the same deferred-verification workload in both configurations:
per-thread verifiers (FastVer-style DV) vs one shared verifier thread
(Concerto-style). Expected shape: Concerto plateaus as workers grow; the
per-thread design keeps scaling, opening roughly an order of magnitude at
high worker counts.
"""

from __future__ import annotations

from repro import new_client
from repro.baselines.deferred_only import DeferredStore
from repro.bench.harness import BenchRow, scaled
from repro.instrument import COUNTERS
from repro.sim.metrics import MetricsBuilder
from repro.workloads.ycsb import YCSB_A, YcsbGenerator

PAPER_SIZE = 10_000_000  # Concerto's evaluation size
WORKERS = [1, 4, 16, 32]
OPS = 6_000


def run_config(n_workers: int, shared: bool) -> float:
    COUNTERS.reset()
    records = scaled(PAPER_SIZE)
    items = [(k, k.to_bytes(8, "big")) for k in range(records)]
    db = DeferredStore(items, key_width=64, n_workers=n_workers,
                       shared_verifier=shared)
    client = new_client(1)
    db.register_client(client)
    generator = YcsbGenerator(YCSB_A, records, seed=5)
    builder = MetricsBuilder(n_workers, PAPER_SIZE, serial_verifier=shared)
    before = COUNTERS.snapshot()
    for i, (kind, key, arg) in enumerate(generator.operations(OPS)):
        worker = i % n_workers
        if kind == "get":
            db.get(client, key, worker=worker)
        else:
            db.put(client, key, arg, worker=worker)
    db.flush()
    builder.add_ops(COUNTERS.snapshot().diff(before), OPS)
    return builder.build().throughput_mops


def run_comparison():
    rows = []
    series = {}
    for shared, label in ((True, "Concerto (shared verifier)"),
                          (False, "FastVer-DV (per-thread verifiers)")):
        points = []
        for workers in WORKERS:
            mops = run_config(workers, shared)
            points.append(mops)
            rows.append(BenchRow(f"{label}, {workers} workers", mops, 0.0, {}))
        series[shared] = points
    return rows, series


def test_concerto_comparison(benchmark, show):
    rows, series = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    show("§1/§5.3: Concerto single-verifier ceiling vs per-thread verifiers",
         rows)
    concerto, fastver = series[True], series[False]
    # Concerto's dedicated verifier pipelines with the host threads, so it
    # can start ahead of the single-thread FastVer-DV point — but it is
    # verifier-bound and cannot scale: flat across all worker counts.
    assert max(concerto) < 1.5 * min(concerto)
    # Per-thread verifiers keep scaling and open a wide gap (paper: an
    # order of magnitude over Concerto at full scale).
    assert fastver[-1] > fastver[0] * 4
    assert fastver[-1] > 3 * concerto[-1]

"""E2 — Figure 13a: throughput vs latency for the scan workload (YCSB-E).

64M-record database (scaled), scan length 100, zipfian start keys. The
paper reports the per-*key* operation rate (a scan of length 100 counts
as ~100 key ops) and notes the per-key rate is close to YCSB-A's —
deferred verification turns reads into read-modify-writes either way —
with a flatter curve at low latencies where cached Merkle records help
scans more than point ops.
"""

from __future__ import annotations

from repro.bench.harness import BenchRow, scaled, sweep_fastver
from repro.workloads.ycsb import YCSB_A, YCSB_E

PAPER_SIZE = 64_000_000
#: Stream entries per epoch (each ~100 key ops for YCSB-E).
BATCHES = [40, 120, 240]
N_WORKERS = 8


def run_scans() -> tuple[list[BenchRow], list[BenchRow]]:
    records = scaled(PAPER_SIZE)
    scan_rows = [
        BenchRow(f"YCSB-E, {batch} scans/epoch",
                 result.throughput_mops, result.verification_latency_s,
                 {"deferred": result.deferred_population})
        for batch, result in sweep_fastver(
            YCSB_E, records, PAPER_SIZE, n_workers=N_WORKERS,
            batch_sizes=BATCHES)
    ]
    point_rows = [
        BenchRow(f"YCSB-A, {batch} ops/epoch",
                 result.throughput_mops, result.verification_latency_s, {})
        for batch, result in sweep_fastver(
            YCSB_A, records, PAPER_SIZE, n_workers=N_WORKERS,
            batch_sizes=[b * 100 for b in BATCHES])
    ]
    return scan_rows, point_rows


def test_fig13a_scan_workload(benchmark, show):
    scan_rows, point_rows = benchmark.pedantic(run_scans, rounds=1,
                                               iterations=1)
    show("Fig 13a: YCSB-E scans (length 100) vs YCSB-A point ops, 64M "
         "records", scan_rows + point_rows)
    # Shape (§8.1): the scan curve is *flat* at low latencies — sequential
    # scan keys give Merkle-chain locality, so batching buys little —
    # whereas the point-op curve rises steeply with batch size.
    scans = [r.throughput_mops for r in scan_rows]
    points = [r.throughput_mops for r in point_rows]
    scan_spread = max(scans) / min(scans)
    point_spread = max(points) / min(points)
    assert scan_spread < point_spread
    assert scan_spread < 1.5
    # Per-key scan rate is in the same ballpark as point ops (the paper:
    # "very similar"; cached merkle records help scans more).
    assert max(scans) > 0.3 * max(points)
    # Scans reach low verification latency (the flat low-latency region).
    assert min(r.latency_s for r in scan_rows) < min(
        r.latency_s for r in point_rows)

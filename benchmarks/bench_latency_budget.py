"""P3 — §2.3's latency-control desideratum, closed-loop.

The paper requires that "a solution approach for verified databases
should allow the client application to control latency, e.g., specify a
latency bound of one second". FastVer's knob is the batch size; the
:class:`~repro.sim.tuning.LatencyTuner` drives it. For several budgets we
run the tuner and report achieved verification latency and throughput:
achieved latency should track the budget, and throughput should rise
with looser budgets (the Fig 12 tradeoff, now self-tuned).
"""

from __future__ import annotations

from repro.bench.harness import BenchRow, make_fastver, scaled
from repro.instrument import COUNTERS
from repro.sim.tuning import run_with_budget
from repro.workloads.ycsb import YCSB_A, YcsbGenerator

PAPER_SIZE = 32_000_000
BUDGETS_S = [2e-4, 1e-3, 5e-3]
N_WORKERS = 8


def run_budgets():
    records = scaled(PAPER_SIZE)
    rows = []
    achieved = []
    for budget in BUDGETS_S:
        COUNTERS.reset()
        db, client = make_fastver(records, n_workers=N_WORKERS,
                                  partition_depth=5)
        generator = YcsbGenerator(YCSB_A, records, seed=2)
        tuner, metrics = run_with_budget(
            db, client, generator, total_ops=min(20_000, records),
            target_latency_s=budget, n_workers=N_WORKERS,
            modeled_db_records=PAPER_SIZE, initial_batch=500)
        full_epochs = tuner.history[:-1] or tuner.history
        last = full_epochs[-1].latency_s
        rows.append(BenchRow(
            f"budget {budget * 1e3:.1f} ms",
            metrics.throughput_mops, last,
            {"final_batch": tuner.batch, "epochs": len(tuner.history)}))
        achieved.append((budget, last, tuner.batch))
    return rows, achieved


def test_latency_budget_control(benchmark, show):
    rows, achieved = benchmark.pedantic(run_budgets, rounds=1, iterations=1)
    show("P3: closed-loop latency budgets (YCSB-A, 32M records)", rows)
    for budget, last, _ in achieved:
        # The controller lands within 3x of the budget on the final epoch:
        # this is P3 — the *client* dictates verification latency, and no
        # database-size effect can override it.
        assert budget / 3 <= last <= budget * 3, (budget, last)
    # The control response is monotone: looser budgets → larger batches.
    batches = [b for _, _, b in achieved]
    assert batches == sorted(batches)

"""E10 — §8.5 (text): hashing-rate asymmetry.

The paper profiles multiset hashing at ~3.2 GB/s and Blake3 Merkle
hashing at ~400 MB/s — an 8x gap that explains most of DV's advantage
over Merkle schemes. We report (a) the *modelled* rates the cost model
carries (exactly the paper's), and (b) the wall-clock rates of our
actual primitives (blake2b / keyed-blake2b), which don't affect any
simulated number but document the substrate.
"""

from __future__ import annotations

import time

from repro.bench.harness import BenchRow
from repro.crypto.hashing import hash_bytes
from repro.crypto.multiset import MultisetHasher
from repro.crypto.prf import Prf
from repro.instrument import Counters
from repro.sim.costs import DEFAULT_COSTS

PAYLOAD = bytes(4096)
ROUNDS = 2_000


def wall_rate(fn) -> float:
    """MB/s of one primitive over ROUNDS x 4KiB."""
    start = time.perf_counter()
    for _ in range(ROUNDS):
        fn(PAYLOAD)
    elapsed = time.perf_counter() - start
    return len(PAYLOAD) * ROUNDS / elapsed / 1e6


def run_rates():
    costs = DEFAULT_COSTS
    modeled_merkle = 1e9 / costs.merkle_hash_per_byte_ns / 1e6   # MB/s
    modeled_multiset = 1e9 / costs.multiset_per_byte_ns / 1e6
    scratch = Counters()
    hasher = MultisetHasher(Prf.generate(), counters=scratch)
    rows = [
        BenchRow("modeled Merkle hash (Blake3)", modeled_merkle, 0.0,
                 {"unit": "MB/s"}),
        BenchRow("modeled multiset hash (AES-CMAC)", modeled_multiset, 0.0,
                 {"unit": "MB/s"}),
        BenchRow("wall-clock blake2b substitute",
                 wall_rate(lambda p: hash_bytes(p, counters=scratch)), 0.0,
                 {"unit": "MB/s"}),
        BenchRow("wall-clock keyed-PRF substitute",
                 wall_rate(hasher.insert), 0.0, {"unit": "MB/s"}),
    ]
    return rows


def test_crypto_rates(benchmark, show):
    rows = benchmark.pedantic(run_rates, rounds=1, iterations=1)
    show("§8.5: hashing rates (throughput column is MB/s here)", rows)
    modeled_merkle, modeled_multiset = rows[0], rows[1]
    # The modelled asymmetry matches the paper: 3.2 GB/s vs 400 MB/s.
    assert abs(modeled_merkle.throughput_mops - 400) < 1
    assert abs(modeled_multiset.throughput_mops - 3200) < 1

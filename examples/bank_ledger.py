#!/usr/bin/env python3
"""The paper's §1 high-throughput scenario: a database of bank accounts.

Millions of updates per second, a substantial economic incentive to
tamper, and a strict latency budget for when a transfer is *settled*.
This example runs a transfer workload under a verification-latency
budget, prints the throughput/latency numbers of the run, and shows the
conservation-of-money invariant holding across epochs.

Run:  python examples/bank_ledger.py
"""

import random

from repro import FastVer, FastVerConfig, new_client
from repro.instrument import COUNTERS
from repro.sim.costs import DEFAULT_COSTS
from repro.enclave.costmodel import SIMULATED

N_ACCOUNTS = 2_000
OPENING_BALANCE = 1_000
TRANSFERS = 3_000
SETTLE_EVERY = 1_000  # ops per verification epoch (the latency knob, §8.1)


def encode(balance: int) -> bytes:
    return balance.to_bytes(8, "big", signed=True)


def decode(payload: bytes) -> int:
    return int.from_bytes(payload, "big", signed=True)


def main() -> None:
    db = FastVer(
        FastVerConfig(key_width=32, n_workers=4, partition_depth=5,
                      cache_capacity=256),
        items=[(acct, encode(OPENING_BALANCE)) for acct in range(N_ACCOUNTS)],
    )
    bank = new_client(client_id=1)
    db.register_client(bank)
    rng = random.Random(42)

    COUNTERS.reset()
    epochs = 0
    for i in range(TRANSFERS):
        src, dst = rng.randrange(N_ACCOUNTS), rng.randrange(N_ACCOUNTS)
        amount = rng.randrange(1, 50)
        worker = i % 4
        a = decode(db.get(bank, src, worker=worker).payload)
        b = decode(db.get(bank, dst, worker=worker).payload)
        db.put(bank, src, encode(a - amount), worker=worker)
        db.put(bank, dst, encode(b + amount), worker=worker)
        if (i + 1) % (SETTLE_EVERY // 4) == 0:
            db.verify()
            db.flush()
            epochs += 1

    db.verify()
    db.flush()
    epochs += 1

    # Conservation of money: the audit scan itself is a validated workload.
    total = 0
    for acct, payload in db.scan(bank, 0, N_ACCOUNTS):
        total += decode(payload)
    db.verify()
    db.flush()
    print(f"accounts: {N_ACCOUNTS}, transfers: {TRANSFERS}, epochs: {epochs}")
    print(f"total money: {total} (expected {N_ACCOUNTS * OPENING_BALANCE})")
    assert total == N_ACCOUNTS * OPENING_BALANCE

    # What did integrity cost? The cost model prices the counted work.
    c = COUNTERS
    verifier_ns = DEFAULT_COSTS.verifier_ns(c, SIMULATED)
    host_ns = DEFAULT_COSTS.host_ns(c, N_ACCOUNTS)
    print(f"ops: {c.ops}, enclave crossings: {c.enclave_entries}, "
          f"merkle hashes: {c.merkle_hashes}, multiset updates: "
          f"{c.multiset_updates}")
    print(f"modeled verifier time {verifier_ns / 1e6:.1f} ms, "
          f"host time {host_ns / 1e6:.1f} ms "
          f"({100 * verifier_ns / (verifier_ns + host_ns):.0f}% in verifier)")
    print(f"every transfer settled: client is at epoch "
          f"{bank.settled_epoch}")


if __name__ == "__main__":
    main()

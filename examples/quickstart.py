#!/usr/bin/env python3
"""Quickstart: a verified key-value store in a dozen lines.

Loads a small database, runs authorized reads and writes, closes a
verification epoch, and shows the client-side settlement that turns
provisional results into cryptographically validated ones.

Run:  python examples/quickstart.py
"""

from repro import FastVer, FastVerConfig, new_client


def main() -> None:
    # A database of 1,000 records. key_width=32 keeps the sparse Merkle
    # tree shallow for the demo; production would use the default 256-bit
    # keys (hashes of application keys).
    db = FastVer(
        FastVerConfig(key_width=32, n_workers=2, partition_depth=4,
                      cache_capacity=128),
        items=[(k, b"value-%d" % k) for k in range(1_000)],
    )

    # Clients share MAC keys with the in-enclave verifier. Only registered
    # clients can change data: the host alone cannot forge a put.
    alice = new_client(client_id=1)
    db.register_client(alice)

    # Reads and writes look like any KV store...
    print("get(7)      ->", db.get(alice, 7).payload)
    db.put(alice, 7, b"updated-by-alice")
    print("get(7)      ->", db.get(alice, 7).payload)
    print("get(999999) ->", db.get(alice, 999999).payload)  # absent: None
    print("scan(10,3)  ->", db.scan(alice, 10, 3))

    # ...but results are *provisional* until the epoch verifies.
    result = db.put(alice, 8, b"important")
    db.flush()
    print("settled before verify()?", alice.settled(result.nonce))

    report = db.verify()   # the paper's verify(): close the epoch
    db.flush()
    print("settled after verify()? ", alice.settled(result.nonce))
    print("epoch %d verified: %d records re-merkleized, %d anchors migrated"
          % (report.epoch, report.migrated_data, report.migrated_anchors))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Durability demo (§7): epoch-synchronized checkpoints, crash recovery,
the rollback attack the sealed slot defeats, a surprise enclave reboot in
the middle of an epoch, and lenient log-scan salvage of a damaged device.

Run:  python examples/crash_recovery.py
"""

from repro import FastVer, FastVerConfig, new_client
from repro.errors import EnclaveRebootError, RecoveryError, RollbackError
from repro.faults import FaultPlan, install_faults
from repro.store.recovery import rebuild_index_from_log


def main() -> None:
    db = FastVer(
        FastVerConfig(key_width=32, n_workers=2, partition_depth=3,
                      cache_capacity=128),
        items=[(k, b"v%d" % k) for k in range(500)],
    )
    client = new_client(1)
    db.register_client(client)

    db.put(client, 1, b"before-checkpoint")
    db.verify()
    db.flush()
    ckpt1 = db.checkpoint()
    print("checkpoint v%d taken (epoch %d verified)"
          % (ckpt1.version, client.settled_epoch))

    db.put(client, 1, b"after-checkpoint")
    db.verify()
    db.flush()
    ckpt2 = db.checkpoint()
    print("checkpoint v%d taken (epoch %d verified)"
          % (ckpt2.version, client.settled_epoch))

    # --- crash! -----------------------------------------------------------
    print("\n[crash] enclave rebooted, volatile state lost")
    db.recover(ckpt2)
    print("recovered from v%d: get(1) -> %r"
          % (ckpt2.version, db.get(client, 1).payload))
    db.verify()
    db.flush()
    print("post-recovery epoch verified; client settled at epoch",
          client.settled_epoch)

    # --- the rollback attack ------------------------------------------------
    print("\n[attack] host replays the OLDER checkpoint to hide the update")
    try:
        db.recover(ckpt1)
        print("!! rollback accepted (should never happen)")
    except RollbackError as exc:
        print("[verifier] ROLLBACK DETECTED:", exc)
    # The failed restore left the enclave empty; recovering from the
    # legitimate checkpoint brings service back.
    db.recover(ckpt2)
    print("service restored from v%d after the failed rollback"
          % ckpt2.version)

    # --- a surprise reboot in the middle of an epoch ------------------------
    print("\n[fault] enclave reboots mid-epoch (power loss on the TEE)")
    db.put(client, 2, b"mid-epoch")
    install_faults(db, FaultPlan(seed=0, specs={"ecall.reboot": [0]}))
    try:
        db.verify()
        print("!! epoch closed across a reboot (should never happen)")
    except EnclaveRebootError:
        print("[enclave] rebooted mid-epoch; the epoch failed loudly, "
              "nothing half-committed")
    install_faults(db, None)
    db.recover(db.last_checkpoint)
    db.put(client, 2, b"post-recovery")
    db.verify()
    db.flush()
    print("reboot-mid-epoch recovered: get(2) -> %r (settled epoch %d)"
          % (db.get(client, 2).payload, client.settled_epoch))

    # --- a damaged device page and lenient salvage --------------------------
    print("\n[damage] one log page rots on the untrusted device")
    device = db.store.log.device
    tail = db.store.log.tail_address
    db.store.log.flush_until(tail)
    victim = sorted(a for a in range(tail) if a in device)[len(device) // 2]
    device._pages[victim] = b"\x00bitrot"
    try:
        rebuild_index_from_log(device, tail,
                               ordered_width=db.config.key_width)
        print("!! strict rebuild accepted a rotten page")
    except RecoveryError as exc:
        print("[strict]  rebuild refused:", exc)
    salvaged = rebuild_index_from_log(device, tail,
                                      ordered_width=db.config.key_width,
                                      strict=False)
    print("[lenient] rebuild quarantined page(s) %r and salvaged %d records"
          % (salvaged.quarantined_addresses, len(salvaged)))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Durability demo (§7): epoch-synchronized checkpoints, crash recovery,
and the rollback attack the sealed slot defeats.

Run:  python examples/crash_recovery.py
"""

from repro import FastVer, FastVerConfig, new_client
from repro.errors import RollbackError


def main() -> None:
    db = FastVer(
        FastVerConfig(key_width=32, n_workers=2, partition_depth=3,
                      cache_capacity=128),
        items=[(k, b"v%d" % k) for k in range(500)],
    )
    client = new_client(1)
    db.register_client(client)

    db.put(client, 1, b"before-checkpoint")
    db.verify()
    db.flush()
    ckpt1 = db.checkpoint()
    print("checkpoint v%d taken (epoch %d verified)"
          % (ckpt1.version, client.settled_epoch))

    db.put(client, 1, b"after-checkpoint")
    db.verify()
    db.flush()
    ckpt2 = db.checkpoint()
    print("checkpoint v%d taken (epoch %d verified)"
          % (ckpt2.version, client.settled_epoch))

    # --- crash! -----------------------------------------------------------
    print("\n[crash] enclave rebooted, volatile state lost")
    db.recover(ckpt2)
    print("recovered from v%d: get(1) -> %r"
          % (ckpt2.version, db.get(client, 1).payload))
    db.verify()
    db.flush()
    print("post-recovery epoch verified; client settled at epoch",
          client.settled_epoch)

    # --- the rollback attack ------------------------------------------------
    print("\n[attack] host replays the OLDER checkpoint to hide the update")
    try:
        db.recover(ckpt1)
        print("!! rollback accepted (should never happen)")
    except RollbackError as exc:
        print("[verifier] ROLLBACK DETECTED:", exc)


if __name__ == "__main__":
    main()

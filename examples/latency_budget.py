#!/usr/bin/env python3
"""Performance goal P3 in action: the client dictates verification latency.

The paper (§2.3): "a solution should allow the client application to
control latency, e.g., specify a latency bound of one second. In
particular, the database size should not limit the size of the latency
budget a client can set." This demo runs the closed-loop controller for a
few budgets and shows the achieved latencies and chosen batch sizes.

Run:  python examples/latency_budget.py
"""

from repro import FastVer, FastVerConfig, new_client
from repro.instrument import COUNTERS
from repro.sim.tuning import run_with_budget
from repro.workloads.ycsb import YCSB_A, YcsbGenerator

RECORDS = 5_000
OPS = 8_000


def main() -> None:
    print(f"{'budget':>10} {'achieved':>10} {'batch':>8} {'Mops/s':>8}")
    for budget_ms in (0.1, 0.5, 2.0):
        COUNTERS.reset()
        db = FastVer(
            FastVerConfig(key_width=64, n_workers=4, partition_depth=4),
            items=[(k, k.to_bytes(8, "big")) for k in range(RECORDS)],
        )
        client = new_client(1)
        db.register_client(client)
        generator = YcsbGenerator(YCSB_A, RECORDS, seed=1)
        tuner, metrics = run_with_budget(
            db, client, generator, total_ops=OPS,
            target_latency_s=budget_ms / 1e3, n_workers=4,
            modeled_db_records=RECORDS * 800,  # paper-scale memory effects
            initial_batch=300)
        full = tuner.history[:-1] or tuner.history
        print(f"{budget_ms:>8.1f}ms {full[-1].latency_s * 1e3:>8.2f}ms "
              f"{tuner.batch:>8} {metrics.throughput_mops:>8.2f}")
        db.flush()
    print("\nevery epoch settled; the budget, not the database size, "
          "decided the latency")


if __name__ == "__main__":
    main()

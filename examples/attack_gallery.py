#!/usr/bin/env python3
"""A gallery of byzantine-host attacks, each caught by a verifier check.

Runs every attack from the adversary harness against a fresh store and
reports which check detected it — the practical face of the paper's
formally-proven guarantee (§6.4): if the checks pass, the history is
sequentially consistent; if the host cheats, some check fails.

Run:  python examples/attack_gallery.py
"""

from repro import FastVer, FastVerConfig, new_client
from repro.adversary import COLD_ATTACKS, WARM_ATTACKS, rollback_record
from repro.errors import IntegrityError, ProtocolError


def fresh(warm_key=None):
    db = FastVer(
        FastVerConfig(key_width=16, n_workers=2, partition_depth=3,
                      cache_capacity=64),
        items=[(k, b"v%d" % k) for k in range(100)],
    )
    client = new_client(1)
    db.register_client(client)
    if warm_key is not None:
        db.put(client, warm_key, b"precious")
        db.flush()
    return db, client


def provoke(db, client, key):
    db.get(client, key)
    db.flush()
    db.verify()
    db.flush()


def main() -> None:
    print(f"{'attack':<28} {'state':<6} detected by")
    print("-" * 64)

    for name, attack in sorted(WARM_ATTACKS.items()):
        db, client = fresh(warm_key=7)
        attack(db, 7)
        try:
            if name == "skip_migration":
                db.verify()  # only bites when the record is not re-touched
                db.flush()
            else:
                provoke(db, client, 7)
            print(f"{name:<28} warm   !! UNDETECTED !!")
        except IntegrityError as exc:
            print(f"{name:<28} warm   {type(exc).__name__}")

    for name, attack in sorted(COLD_ATTACKS.items()):
        db, client = fresh(warm_key=7)
        db.verify()  # re-merkleize: key 7 is cold now
        db.flush()
        target = None
        for candidate in range(7, 99):
            try:
                attack(db, candidate)
                target = candidate
                break
            except ProtocolError:
                continue
        try:
            provoke(db, client, target)
            print(f"{name:<28} cold   !! UNDETECTED !!")
        except IntegrityError as exc:
            print(f"{name:<28} cold   {type(exc).__name__}")

    # Rollback: replay a stale record over a legitimate update.
    db, client = fresh(warm_key=7)
    rollback_record(db, 7, lambda: db.put(client, 7, b"v-new"))
    try:
        provoke(db, client, 7)
        print(f"{'rollback_record':<28} warm   !! UNDETECTED !!")
    except IntegrityError as exc:
        print(f"{'rollback_record':<28} warm   {type(exc).__name__}")


if __name__ == "__main__":
    main()

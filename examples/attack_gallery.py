#!/usr/bin/env python3
"""A gallery of byzantine-host attacks, each caught by a verifier check.

Runs every attack from the adversary harness against a fresh store and
reports which check detected it — the practical face of the paper's
formally-proven guarantee (§6.4): if the checks pass, the history is
sequentially consistent; if the host cheats, some check fails.

The second half runs the *distributed* red-team campaigns (rollback/fork
across checkpoints, receipt replay across failover, split-brain double
serving, shipping-stream forks, dedup/batch tampering) through the full
client → server → standby stack and prints which detector fired and how
long detection took in simulated ticks.

Run:  python examples/attack_gallery.py
"""

from repro import FastVer, FastVerConfig, new_client
from repro.adversary import (
    COLD_ATTACKS,
    WARM_ATTACKS,
    rollback_record,
    run_redteam,
)
from repro.errors import IntegrityError, ProtocolError


def fresh(warm_key=None):
    db = FastVer(
        FastVerConfig(key_width=16, n_workers=2, partition_depth=3,
                      cache_capacity=64),
        items=[(k, b"v%d" % k) for k in range(100)],
    )
    client = new_client(1)
    db.register_client(client)
    if warm_key is not None:
        db.put(client, warm_key, b"precious")
        db.flush()
    return db, client


def provoke(db, client, key):
    db.get(client, key)
    db.flush()
    db.verify()
    db.flush()


def main() -> None:
    print(f"{'attack':<28} {'state':<6} detected by")
    print("-" * 64)

    for name, attack in sorted(WARM_ATTACKS.items()):
        db, client = fresh(warm_key=7)
        attack(db, 7)
        try:
            if name == "skip_migration":
                db.verify()  # only bites when the record is not re-touched
                db.flush()
            else:
                provoke(db, client, 7)
            print(f"{name:<28} warm   !! UNDETECTED !!")
        except IntegrityError as exc:
            print(f"{name:<28} warm   {type(exc).__name__}")

    for name, attack in sorted(COLD_ATTACKS.items()):
        db, client = fresh(warm_key=7)
        db.verify()  # re-merkleize: key 7 is cold now
        db.flush()
        target = None
        for candidate in range(7, 99):
            try:
                attack(db, candidate)
                target = candidate
                break
            except ProtocolError:
                continue
        try:
            provoke(db, client, target)
            print(f"{name:<28} cold   !! UNDETECTED !!")
        except IntegrityError as exc:
            print(f"{name:<28} cold   {type(exc).__name__}")

    # Rollback: replay a stale record over a legitimate update.
    db, client = fresh(warm_key=7)
    rollback_record(db, 7, lambda: db.put(client, 7, b"v-new"))
    try:
        provoke(db, client, 7)
        print(f"{'rollback_record':<28} warm   !! UNDETECTED !!")
    except IntegrityError as exc:
        print(f"{'rollback_record':<28} warm   {type(exc).__name__}")

    # ------------------------------------------------------------------
    # Distributed campaigns: the red-team engine drives stateful attacks
    # through the serving pipeline, replication stream, and failover.
    # Expected detectors (see docs/PROTOCOL.md, "What each attack hits"):
    #   rollback_fork   -> sealed_slot          (anti-rollback counter)
    #   receipt_replay  -> client_fence / client_chain
    #   split_brain     -> sdk_generation       (SplitBrainError)
    #   shipping_fork   -> standby_revalidation (re-validated entries)
    #   dedup_tamper    -> sdk_receipt_binding  (ReceiptBindingError)
    #   batch_tamper    -> client_mac           (enclave put-MAC check)
    # ------------------------------------------------------------------
    print()
    print(f"{'distributed attack':<18} {'topology':<10} {'detected by':<22} "
          f"latency")
    print("-" * 64)
    report = run_redteam(seed=7)
    for v in report.verdicts:
        verdict = v.detector if v.detected else "!! ESCAPED !!"
        print(f"{v.attack:<18} {v.topology:<10} {verdict:<22} "
              f"{v.latency_ticks:g} ticks")
    print("-" * 64)
    status = "zero escapes" if report.ok else f"{report.escapes} ESCAPES"
    print(f"{len(report.verdicts)} campaigns, {status} "
          f"(digest {report.digest()[:12]})")


if __name__ == "__main__":
    main()

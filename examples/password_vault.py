#!/usr/bin/env python3
"""The paper's §1 motivating scenario: a username/password-hash table.

A cloud service authenticates users against a table of password hashes.
A rogue administrator with root access tries to overwrite a user's hash
to log in as them. With FastVer, the swap is detected before the login
epoch can validate — the tampered check never becomes trusted.

Run:  python examples/password_vault.py
"""

import hashlib

from repro import FastVer, FastVerConfig, new_client
from repro.core.records import DataValue
from repro.errors import IntegrityError


def pw_hash(password: str) -> bytes:
    return hashlib.sha256(password.encode()).digest()


def user_key(username: str) -> int:
    # Application keys hash down to the data-key domain (§2.1).
    return int.from_bytes(hashlib.sha256(username.encode()).digest()[:4],
                          "big")


def main() -> None:
    users = {"alice": "correct-horse", "bob": "battery-staple",
             "carol": "hunter2"}
    db = FastVer(
        FastVerConfig(key_width=32, n_workers=2, partition_depth=3,
                      cache_capacity=128),
        items=[(user_key(u), pw_hash(p)) for u, p in users.items()],
    )
    auth_service = new_client(client_id=1)
    db.register_client(auth_service)

    def check_login(username: str, password: str) -> bool:
        stored = db.get(auth_service, user_key(username)).payload
        ok = stored is not None and stored == pw_hash(password)
        # A real service would wait for epoch settlement before granting a
        # session token; verify() below plays that role.
        db.verify()
        db.flush()
        return ok

    print("alice/correct-horse ->", check_login("alice", "correct-horse"))
    print("alice/wrong-pass    ->", check_login("alice", "wrong-pass"))

    # --- the attack -------------------------------------------------------
    # The administrator edits the table directly, installing a hash they
    # know, then tries to authenticate as alice.
    print("\n[admin] overwriting alice's password hash in the host store...")
    record = db.store.read_record(db.data_key(user_key("alice")))
    record.value = DataValue(pw_hash("admins-own-password"))

    try:
        granted = check_login("alice", "admins-own-password")
        print("login granted?", granted, "(should never be reached)")
    except IntegrityError as exc:
        print("[verifier] TAMPERING DETECTED:", type(exc).__name__)
        print("[service ] login rejected; epoch never validated")


if __name__ == "__main__":
    main()
